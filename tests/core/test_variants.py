"""Unit tests for the variant models (NewReno, Veno) in the paper's framework."""

import pytest

from repro.core.enhanced import ModelOptions, enhanced_throughput
from repro.core.params import LinkParams
from repro.core.variants import (
    VENO_RANDOM_LOSS_BACKOFF,
    newreno_throughput,
    variant_throughput,
    veno_throughput,
)
from repro.util.errors import ModelDomainError


def params(**overrides) -> LinkParams:
    base = dict(rtt=0.12, timeout=0.8, data_loss=0.0075, ack_loss=0.0066,
                recovery_loss=0.27, wmax=64.0, b=2)
    base.update(overrides)
    return LinkParams(**base)


class TestNewReno:
    def test_at_least_reno(self):
        reno = enhanced_throughput(params()).throughput
        newreno = newreno_throughput(params()).throughput
        assert newreno >= reno

    def test_gain_grows_with_loss(self):
        # More loss -> more multi-loss windows -> more rescued timeouts.
        gains = []
        for p_d in (0.002, 0.01, 0.05):
            reno = enhanced_throughput(params(data_loss=p_d)).throughput
            newreno = newreno_throughput(params(data_loss=p_d)).throughput
            gains.append(newreno / reno - 1.0)
        assert gains == sorted(gains)

    def test_converges_to_reno_at_low_loss(self):
        p = params(data_loss=1e-5, ack_loss=0.0, recovery_loss=1e-5)
        reno = enhanced_throughput(p).throughput
        newreno = newreno_throughput(p).throughput
        assert newreno == pytest.approx(reno, rel=0.02)

    def test_timeout_probability_reduced(self):
        reno = enhanced_throughput(params(data_loss=0.03))
        newreno = newreno_throughput(params(data_loss=0.03))
        assert newreno.timeout_probability <= reno.timeout_probability

    def test_ack_burst_timeouts_not_rescued(self):
        # With data loss ~ 0 and heavy ACK bursts, NewReno ~= Reno: the
        # variant cannot see missing ACKs.
        options = ModelOptions(ack_burst_override=0.1)
        p = params(data_loss=1e-5)
        reno = enhanced_throughput(p, options).throughput
        newreno = newreno_throughput(p, options).throughput
        assert newreno == pytest.approx(reno, rel=0.02)


class TestVeno:
    def test_beats_reno_under_random_loss(self):
        reno = enhanced_throughput(params()).throughput
        veno = veno_throughput(params()).throughput
        assert veno > reno

    def test_congestive_fraction_reduces_gain(self):
        all_random = veno_throughput(params(), random_loss_fraction=1.0).throughput
        all_congestive = veno_throughput(params(), random_loss_fraction=0.0).throughput
        assert all_congestive < all_random

    def test_all_congestive_equals_reno_window(self):
        prediction = veno_throughput(params(), random_loss_fraction=0.0)
        reno = enhanced_throughput(params())
        assert prediction.expected_window == pytest.approx(reno.expected_window)

    def test_window_capped_at_wmax(self):
        prediction = veno_throughput(params(data_loss=0.0005, wmax=16.0))
        assert prediction.expected_window <= 16.0 + 1e-9

    def test_rejects_bad_fraction(self):
        with pytest.raises(ModelDomainError):
            veno_throughput(params(), random_loss_fraction=1.5)

    def test_backoff_constant(self):
        assert VENO_RANDOM_LOSS_BACKOFF == pytest.approx(0.8)


class TestVariantTable:
    def test_all_three_present(self):
        table = variant_throughput(params())
        assert set(table) == {"reno", "newreno", "veno"}

    def test_ordering_under_hsr_conditions(self):
        table = variant_throughput(params())
        assert table["veno"] >= table["newreno"] >= table["reno"]

    def test_positive(self):
        assert all(value > 0.0 for value in variant_throughput(params()).values())
