"""Unit tests for the inverse-model fitting module."""

import pytest

from repro.core.enhanced import ModelOptions, enhanced_throughput
from repro.core.fitting import (
    fit_ack_burst,
    fit_latent_parameters,
    fit_population_recovery_loss,
    fit_recovery_loss,
)
from repro.core.params import LinkParams


def params(**overrides) -> LinkParams:
    base = dict(rtt=0.12, timeout=0.8, data_loss=0.0075, ack_loss=0.0066,
                recovery_loss=0.3, wmax=64.0, b=2)
    base.update(overrides)
    return LinkParams(**base)


def synth_throughput(q, pa=0.0, **overrides):
    return enhanced_throughput(
        params(**overrides).with_(recovery_loss=q),
        ModelOptions(ack_burst_override=pa),
    ).throughput


class TestFitRecoveryLoss:
    @pytest.mark.parametrize("true_q", [0.1, 0.3, 0.6])
    def test_recovers_true_q(self, true_q):
        observed = synth_throughput(true_q)
        fitted = fit_recovery_loss(params(), observed)
        assert fitted.recovery_loss == pytest.approx(true_q, abs=0.05)
        assert fitted.deviation < 0.02

    def test_rejects_nonpositive_throughput(self):
        with pytest.raises(ValueError):
            fit_recovery_loss(params(), 0.0)

    def test_reports_evaluations(self):
        fitted = fit_recovery_loss(params(), synth_throughput(0.3))
        assert fitted.evaluations > 0


class TestFitAckBurst:
    @pytest.mark.parametrize("true_pa", [0.02, 0.08, 0.2])
    def test_recovers_true_pa(self, true_pa):
        observed = synth_throughput(0.3, pa=true_pa)
        fitted = fit_ack_burst(params(recovery_loss=0.3), observed)
        assert fitted.ack_burst == pytest.approx(true_pa, abs=0.05)
        assert fitted.deviation < 0.02

    def test_zero_burst_when_observed_matches_clean_model(self):
        observed = synth_throughput(0.3, pa=0.0)
        fitted = fit_ack_burst(params(recovery_loss=0.3), observed)
        assert fitted.ack_burst == pytest.approx(0.0, abs=0.02)


class TestJointFit:
    def test_residual_small(self):
        observed = synth_throughput(0.35, pa=0.04)
        fitted = fit_latent_parameters(params(), observed)
        # The pair is weakly identifiable from one flow; what must hold
        # is that the fitted pair reproduces the observation.
        assert fitted.deviation < 0.05

    def test_rejects_bad_rounds(self):
        with pytest.raises(ValueError):
            fit_latent_parameters(params(), 100.0, rounds=0)


class TestPopulationFit:
    def test_shared_q_recovered(self):
        true_q = 0.3
        observations = [
            (params(data_loss=p_d), synth_throughput(true_q, data_loss=p_d))
            for p_d in (0.003, 0.0075, 0.02)
        ]
        fitted = fit_population_recovery_loss(observations)
        assert fitted.recovery_loss == pytest.approx(true_q, abs=0.05)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_population_recovery_loss([])
