"""Unit tests for the Section V-A delayed-ACK analysis."""

import pytest

from repro.core.delayed_ack import (
    adaptive_delayed_window,
    delayed_ack_tradeoff,
    optimal_delayed_window,
)
from repro.core.enhanced import ModelOptions
from repro.core.params import LinkParams


def harsh_channel(**overrides) -> LinkParams:
    """A channel where ACK loss is heavy enough for b to matter."""
    base = dict(
        rtt=0.12, timeout=0.8, data_loss=0.02, ack_loss=0.35, recovery_loss=0.3, wmax=32.0
    )
    base.update(overrides)
    return LinkParams(**base)


def benign_channel(**overrides) -> LinkParams:
    base = dict(
        rtt=0.05, timeout=0.4, data_loss=0.005, ack_loss=0.001, recovery_loss=0.005, wmax=64.0
    )
    base.update(overrides)
    return LinkParams(**base)


class TestTradeoffSweep:
    def test_one_point_per_b(self):
        points = delayed_ack_tradeoff(harsh_channel(), b_values=(1, 2, 4))
        assert [point.b for point in points] == [1, 2, 4]

    def test_burst_loss_grows_with_b(self):
        # Fewer ACKs per round -> easier to lose them all.
        points = delayed_ack_tradeoff(harsh_channel(), b_values=(1, 2, 4, 8))
        burst = [point.ack_burst_loss for point in points]
        assert burst == sorted(burst)

    def test_spurious_fraction_grows_with_b(self):
        points = delayed_ack_tradeoff(harsh_channel(), b_values=(1, 2, 4, 8))
        fractions = [point.spurious_timeout_fraction for point in points]
        assert fractions == sorted(fractions)

    def test_paper_pa_form_insensitive_to_b(self):
        # With P_a = p_a^w (per_ack_burst=False) changing b does not
        # change the ACK-burst probability itself — the Section V-A
        # blind spot this module exists to expose.
        points = delayed_ack_tradeoff(
            harsh_channel(data_loss=0.02),
            b_values=(1, 2),
            options=ModelOptions(per_ack_burst=False, fixed_point=False,
                                 ack_burst_override=0.05),
        )
        assert points[0].ack_burst_loss == points[1].ack_burst_loss

    def test_throughputs_positive(self):
        for point in delayed_ack_tradeoff(harsh_channel()):
            assert point.throughput > 0.0


class TestOptimalWindow:
    def test_returns_argmax(self):
        points = delayed_ack_tradeoff(harsh_channel())
        best = optimal_delayed_window(harsh_channel())
        assert best.throughput == max(point.throughput for point in points)

    def test_harsh_channel_prefers_small_b(self):
        # Heavy ACK loss: every ACK matters, small delayed window wins.
        best = optimal_delayed_window(harsh_channel(ack_loss=0.45))
        assert best.b <= 2


class TestAdaptivePolicy:
    def test_benign_channel_allows_large_window(self):
        assert adaptive_delayed_window(benign_channel(), max_b=8) == 8

    def test_harsh_channel_caps_window(self):
        b = adaptive_delayed_window(
            harsh_channel(ack_loss=0.45), max_b=8, spurious_budget=0.2
        )
        assert b < 8

    def test_zero_budget_forces_b1_on_lossy_channel(self):
        assert adaptive_delayed_window(harsh_channel(), max_b=8, spurious_budget=0.0) == 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            adaptive_delayed_window(benign_channel(), max_b=0)
        with pytest.raises(ValueError):
            adaptive_delayed_window(benign_channel(), spurious_budget=1.5)
