"""Unit tests for the deviation metric and model comparison (Fig. 10 machinery)."""

import pytest

from repro.core.accuracy import FlowObservation, compare_models, deviation_rate
from repro.core.params import LinkParams


def params(**overrides) -> LinkParams:
    base = dict(rtt=0.1, timeout=0.5, data_loss=0.01, ack_loss=0.005, wmax=64.0)
    base.update(overrides)
    return LinkParams(**base)


class TestDeviationRate:
    def test_exact_prediction(self):
        assert deviation_rate(100.0, 100.0) == 0.0

    def test_overprediction(self):
        assert deviation_rate(120.0, 100.0) == pytest.approx(0.2)

    def test_underprediction_symmetric(self):
        assert deviation_rate(80.0, 100.0) == pytest.approx(0.2)

    def test_rejects_nonpositive_trace(self):
        with pytest.raises(ValueError):
            deviation_rate(1.0, 0.0)


class TestFlowObservation:
    def test_valid(self):
        obs = FlowObservation(params=params(), throughput=50.0, group="China Mobile")
        assert obs.group == "China Mobile"

    def test_rejects_nonpositive_throughput(self):
        with pytest.raises(ValueError):
            FlowObservation(params=params(), throughput=0.0)


class TestCompareModels:
    def _observations(self):
        return [
            FlowObservation(params=params(), throughput=100.0, group="A", flow_id="1"),
            FlowObservation(params=params(rtt=0.2), throughput=50.0, group="A", flow_id="2"),
            FlowObservation(params=params(rtt=0.05), throughput=200.0, group="B", flow_id="3"),
        ]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            compare_models([], {"m": lambda p: 1.0})

    def test_perfect_model_zero_deviation(self):
        observations = self._observations()
        truths = iter([100.0, 50.0, 200.0])
        lookup = {obs.flow_id: obs.throughput for obs in observations}
        # A model that returns the exact observed throughput per RTT key.
        by_rtt = {obs.params.rtt: obs.throughput for obs in observations}
        comparison = compare_models(observations, {"oracle": lambda p: by_rtt[p.rtt]})
        assert comparison.mean_deviation("oracle") == pytest.approx(0.0)

    def test_constant_model_deviations(self):
        observations = self._observations()
        comparison = compare_models(observations, {"const": lambda p: 100.0})
        # deviations: 0, 1.0, 0.5
        assert comparison.deviations["const"] == pytest.approx([0.0, 1.0, 0.5])
        assert comparison.mean_deviation("const") == pytest.approx(0.5)

    def test_group_means(self):
        observations = self._observations()
        comparison = compare_models(observations, {"const": lambda p: 100.0})
        assert comparison.group_means["const"]["A"] == pytest.approx(0.5)
        assert comparison.group_means["const"]["B"] == pytest.approx(0.5)

    def test_improvement(self):
        observations = self._observations()
        comparison = compare_models(
            observations,
            {"good": lambda p: 100.0 if p.rtt == 0.1 else (50.0 if p.rtt == 0.2 else 200.0),
             "bad": lambda p: 100.0},
        )
        assert comparison.improvement("good", "bad") == pytest.approx(0.5)

    def test_groups_preserve_first_seen_order(self):
        observations = self._observations()
        comparison = compare_models(observations, {"m": lambda p: 1.0})
        assert comparison.groups == ["A", "B"]

    def test_summary_rows_cover_groups_and_all(self):
        observations = self._observations()
        comparison = compare_models(observations, {"m": lambda p: 100.0})
        rows = comparison.summary_rows()
        groups = {row["group"] for row in rows}
        assert groups == {"A", "B", "ALL"}
        all_row = [r for r in rows if r["group"] == "ALL"][0]
        assert all_row["mean_deviation_pct"] == pytest.approx(50.0)
