"""Unit tests for the enhanced throughput model (paper Eq. 21)."""

import math

import pytest

from repro.core.enhanced import (
    ModelOptions,
    enhanced_throughput,
    padhye_paper_form,
)
from repro.core.padhye import padhye_full_throughput
from repro.core.params import LinkParams
from repro.util.errors import ModelDomainError


def hsr_params(**overrides) -> LinkParams:
    """Paper-calibrated HSR operating point (Section III measurements)."""
    base = dict(
        rtt=0.12,
        timeout=0.8,
        data_loss=0.0075,
        ack_loss=0.0066,
        recovery_loss=0.27,
        wmax=64.0,
        b=2,
    )
    base.update(overrides)
    return LinkParams(**base)


def stationary_params(**overrides) -> LinkParams:
    base = dict(
        rtt=0.05,
        timeout=0.4,
        data_loss=0.001,
        ack_loss=0.0001,
        recovery_loss=0.001,
        wmax=64.0,
        b=2,
    )
    base.update(overrides)
    return LinkParams(**base)


class TestBasicBehaviour:
    def test_positive_throughput(self):
        assert enhanced_throughput(hsr_params()).throughput > 0.0

    def test_prediction_carries_params(self):
        params = hsr_params()
        assert enhanced_throughput(params).params is params

    def test_throughput_mbps_consistent(self):
        prediction = enhanced_throughput(hsr_params())
        assert prediction.throughput_mbps == pytest.approx(
            prediction.throughput * 1460 * 8 / 1e6
        )

    def test_stationary_beats_hsr(self):
        hsr = enhanced_throughput(hsr_params()).throughput
        stationary = enhanced_throughput(stationary_params()).throughput
        assert stationary > hsr

    def test_deterministic(self):
        a = enhanced_throughput(hsr_params()).throughput
        b = enhanced_throughput(hsr_params()).throughput
        assert a == b


class TestPadhyeLimit:
    """P_a -> 0 and q = p_d must recover the Padhye model (paper §IV-B)."""

    def test_padhye_paper_form_equals_stationary_projection(self):
        params = hsr_params()
        direct = enhanced_throughput(params.as_stationary()).throughput
        via_helper = padhye_paper_form(params).throughput
        assert direct == pytest.approx(via_helper)

    def test_agreement_with_original_padhye_closed_form(self):
        # The paper-form baseline and the original Padhye full model
        # should agree closely in the moderate-loss regime.
        for p_d in (0.002, 0.005, 0.01, 0.03):
            params = stationary_params(data_loss=p_d)
            ours = padhye_paper_form(params).throughput
            original = padhye_full_throughput(params.as_stationary())
            assert ours == pytest.approx(original, rel=0.15)

    def test_ack_loss_zero_means_no_burst_loss(self):
        prediction = enhanced_throughput(hsr_params(ack_loss=0.0))
        assert prediction.ack_burst_loss == 0.0
        assert prediction.spurious_timeout_fraction == 0.0


class TestMonotonicity:
    def test_decreasing_in_data_loss(self):
        tps = [
            enhanced_throughput(hsr_params(data_loss=p)).throughput
            for p in (0.001, 0.005, 0.02, 0.05)
        ]
        assert tps == sorted(tps, reverse=True)

    def test_decreasing_in_rtt(self):
        tps = [
            enhanced_throughput(hsr_params(rtt=rtt)).throughput
            for rtt in (0.05, 0.1, 0.2, 0.4)
        ]
        assert tps == sorted(tps, reverse=True)

    def test_decreasing_in_recovery_loss(self):
        tps = [
            enhanced_throughput(hsr_params(recovery_loss=q)).throughput
            for q in (0.05, 0.25, 0.4, 0.6)
        ]
        assert tps == sorted(tps, reverse=True)

    def test_decreasing_in_ack_burst_override(self):
        tps = [
            enhanced_throughput(
                hsr_params(), ModelOptions(ack_burst_override=pa)
            ).throughput
            for pa in (0.0, 0.02, 0.05, 0.1, 0.2)
        ]
        assert tps == sorted(tps, reverse=True)

    def test_increasing_in_wmax_until_unconstrained(self):
        tps = [
            enhanced_throughput(hsr_params(data_loss=0.0005, wmax=w)).throughput
            for w in (4.0, 8.0, 16.0, 32.0)
        ]
        assert tps == sorted(tps)


class TestWindowLimitation:
    def test_low_loss_small_wmax_is_window_limited(self):
        prediction = enhanced_throughput(hsr_params(data_loss=0.0002, wmax=8.0))
        assert prediction.window_limited

    def test_high_loss_is_unconstrained(self):
        prediction = enhanced_throughput(hsr_params(data_loss=0.05, wmax=64.0))
        assert not prediction.window_limited

    def test_expected_window_never_exceeds_wmax(self):
        for p_d in (0.0002, 0.001, 0.01, 0.1):
            for wmax in (4.0, 16.0, 64.0):
                prediction = enhanced_throughput(hsr_params(data_loss=p_d, wmax=wmax))
                assert prediction.expected_window <= wmax + 1e-9

    def test_lossless_link_is_wmax_over_rtt(self):
        params = hsr_params(data_loss=0.0, ack_loss=0.0, recovery_loss=0.0)
        prediction = enhanced_throughput(params)
        assert prediction.throughput == pytest.approx(params.wmax / params.rtt)
        assert prediction.window_limited

    def test_throughput_below_wmax_bound(self):
        # No model prediction can exceed the window-limitation ceiling.
        for p_d in (0.001, 0.01, 0.05):
            params = hsr_params(data_loss=p_d)
            prediction = enhanced_throughput(params)
            assert prediction.throughput <= params.wmax / params.rtt + 1e-9

    def test_branch_continuity(self):
        # Throughput should not jump wildly across the branch switch.
        params_lo = hsr_params(data_loss=0.0002, wmax=30.0)
        lo = enhanced_throughput(params_lo)
        hi = enhanced_throughput(params_lo.with_(wmax=31.0))
        assert abs(lo.throughput - hi.throughput) / hi.throughput < 0.25


class TestAckBurstEffects:
    def test_spurious_fraction_grows_with_burst_override(self):
        fractions = [
            enhanced_throughput(
                hsr_params(), ModelOptions(ack_burst_override=pa)
            ).spurious_timeout_fraction
            for pa in (0.01, 0.05, 0.1, 0.3)
        ]
        assert fractions == sorted(fractions)

    def test_timeout_probability_grows_with_burst_override(self):
        qs = [
            enhanced_throughput(
                hsr_params(), ModelOptions(ack_burst_override=pa)
            ).timeout_probability
            for pa in (0.0, 0.05, 0.2)
        ]
        assert qs == sorted(qs)

    def test_override_rejects_out_of_range(self):
        with pytest.raises(ModelDomainError):
            enhanced_throughput(hsr_params(), ModelOptions(ack_burst_override=1.0))

    def test_measured_burst_loss_halves_throughput_regime(self):
        # With the paper's ~10% measured burst loss, throughput drops
        # far below the no-burst prediction.
        clean = enhanced_throughput(hsr_params()).throughput
        bursty = enhanced_throughput(
            hsr_params(), ModelOptions(ack_burst_override=0.10)
        ).throughput
        assert bursty < 0.8 * clean

    def test_half_spurious_regime_exists(self):
        # The paper measured ~49% spurious timeouts; the model reaches
        # that regime for plausible burst-loss values.
        prediction = enhanced_throughput(
            hsr_params(), ModelOptions(ack_burst_override=0.04)
        )
        assert 0.2 < prediction.spurious_timeout_fraction < 0.9


class TestModelVariants:
    def test_paper_literal_close_for_b2(self):
        # For b=2 the two window conventions coincide; only the +-1
        # constant differs, so predictions should be within a few %.
        params = hsr_params()
        consistent = enhanced_throughput(params, ModelOptions()).throughput
        literal = enhanced_throughput(params, ModelOptions(paper_literal=True)).throughput
        assert literal == pytest.approx(consistent, rel=0.05)

    def test_paper_literal_diverges_for_b1(self):
        # For b=1 the conventions differ by ~4x in the X^2 coefficient.
        params = hsr_params(b=1)
        consistent = enhanced_throughput(params, ModelOptions()).throughput
        literal = enhanced_throughput(params, ModelOptions(paper_literal=True)).throughput
        assert literal < consistent

    def test_timeout_yield_variants_negligible(self):
        params = hsr_params()
        paper = enhanced_throughput(
            params, ModelOptions(timeout_yield_paper_form=True)
        ).throughput
        linear = enhanced_throughput(
            params, ModelOptions(timeout_yield_paper_form=False)
        ).throughput
        assert paper == pytest.approx(linear, rel=0.02)

    def test_fixed_point_vs_single_shot(self):
        params = hsr_params(ack_loss=0.5, data_loss=0.02, b=1)
        fp = enhanced_throughput(params, ModelOptions(fixed_point=True))
        ss = enhanced_throughput(params, ModelOptions(fixed_point=False))
        # Both must be positive and finite; fixed point is self-consistent.
        assert fp.throughput > 0 and ss.throughput > 0
        assert math.isfinite(fp.throughput)

    def test_per_ack_burst_raises_pa(self):
        params = hsr_params(ack_loss=0.2, data_loss=0.005, b=4)
        plain = enhanced_throughput(params, ModelOptions(per_ack_burst=False))
        per_ack = enhanced_throughput(params, ModelOptions(per_ack_burst=True))
        assert per_ack.ack_burst_loss > plain.ack_burst_loss


class TestInternalConsistency:
    def test_expected_rounds_positive(self):
        prediction = enhanced_throughput(hsr_params())
        assert prediction.expected_rounds >= 1.0

    def test_q_in_unit_interval(self):
        for pa in (0.0, 0.05, 0.3):
            prediction = enhanced_throughput(
                hsr_params(), ModelOptions(ack_burst_override=pa)
            )
            assert 0.0 <= prediction.timeout_probability <= 1.0

    def test_expected_timeouts_at_least_one(self):
        prediction = enhanced_throughput(hsr_params())
        assert prediction.expected_timeouts >= 1.0

    def test_timeout_duration_at_least_base_timer(self):
        params = hsr_params()
        prediction = enhanced_throughput(params)
        assert prediction.timeout_duration >= params.timeout

    def test_ca_packets_at_least_one(self):
        prediction = enhanced_throughput(hsr_params(data_loss=0.3))
        assert prediction.ca_packets >= 1.0
