"""Unit tests for repro.core.components — each paper equation in isolation."""

import math

import pytest

from repro.core import components as cf
from repro.util.errors import ModelDomainError


class TestFBackoff:
    def test_zero_loss(self):
        # f(0) = 1: a single timeout, no backoff.
        assert cf.f_backoff(0.0) == pytest.approx(1.0)

    def test_full_loss(self):
        # f(1) = 1+1+2+4+8+16+32 = 64: the 64T cap of the paper's Fig. 2.
        assert cf.f_backoff(1.0) == pytest.approx(64.0)

    def test_hand_computed_value(self):
        p = 0.5
        expected = 1 + 0.5 + 2 * 0.25 + 4 * 0.125 + 8 * 0.0625 + 16 * 0.03125 + 32 * 0.015625
        assert cf.f_backoff(p) == pytest.approx(expected)

    def test_monotone_increasing(self):
        values = [cf.f_backoff(p) for p in (0.0, 0.1, 0.3, 0.5, 0.9)]
        assert values == sorted(values)

    def test_rejects_out_of_range(self):
        with pytest.raises(ModelDomainError):
            cf.f_backoff(-0.1)
        with pytest.raises(ModelDomainError):
            cf.f_backoff(1.1)


class TestFirstLossRound:
    def test_zero_loss_diverges(self):
        assert math.isinf(cf.first_loss_round(0.0, 2))

    def test_decreases_with_loss(self):
        assert cf.first_loss_round(0.001, 2) > cf.first_loss_round(0.01, 2) > cf.first_loss_round(0.1, 2)

    def test_grows_with_b(self):
        # With delayed ACK the window grows more slowly, so the first
        # loss happens in a later round.
        assert cf.first_loss_round(0.01, 4) > cf.first_loss_round(0.01, 1)

    def test_small_loss_asymptotics(self):
        # X_P ~ sqrt(2b(1-p)/(3p)) for small p.
        p, b = 1e-6, 2
        expected = math.sqrt(2 * b / (3 * p))
        assert cf.first_loss_round(p, b) == pytest.approx(expected, rel=1e-2)

    def test_hand_computed(self):
        # p=0.1, b=2: head = 4/6; X_P = 2/3 + sqrt(2*2*0.9/0.3 + 4/9)
        expected = 2 / 3 + math.sqrt(12 * 0.9 / 0.9 * 0.9 / 1.0 * (1 / 0.9) * 0.9 + 4 / 9)
        # compute directly to avoid algebra slips:
        expected = (2 + 2) / 6 + math.sqrt(2 * 2 * (1 - 0.1) / (3 * 0.1) + ((2 + 2) / 6) ** 2)
        assert cf.first_loss_round(0.1, 2) == pytest.approx(expected)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ModelDomainError):
            cf.first_loss_round(1.0, 2)
        with pytest.raises(ModelDomainError):
            cf.first_loss_round(0.1, 0)


class TestExpectedCaRounds:
    def test_padhye_limit(self):
        # P_a -> 0 must give X_P + 1 (paper's L'Hopital check).
        x_p = 25.0
        assert cf.expected_ca_rounds(x_p, 0.0) == pytest.approx(x_p + 1.0)

    def test_continuity_at_zero(self):
        x_p = 25.0
        near_zero = cf.expected_ca_rounds(x_p, 1e-12)
        assert near_zero == pytest.approx(x_p + 1.0, rel=1e-6)

    def test_certain_burst_loss(self):
        # P_a = 1: every CA phase ends in its first round.
        assert cf.expected_ca_rounds(25.0, 1.0) == pytest.approx(1.0)

    def test_infinite_x_p(self):
        # No data loss: phases end only by ACK burst loss, geometric mean 1/P_a.
        assert cf.expected_ca_rounds(math.inf, 0.1) == pytest.approx(10.0)

    def test_infinite_x_p_no_burst_raises(self):
        with pytest.raises(ModelDomainError):
            cf.expected_ca_rounds(math.inf, 0.0)

    def test_decreasing_in_burst_loss(self):
        x_p = 30.0
        rounds = [cf.expected_ca_rounds(x_p, pa) for pa in (0.0, 0.01, 0.1, 0.5)]
        assert rounds == sorted(rounds, reverse=True)

    def test_hand_computed(self):
        # X_P=2, P_a=0.5: E[X] = (1 - 0.5^3)/0.5 = 1.75
        assert cf.expected_ca_rounds(2.0, 0.5) == pytest.approx(1.75)

    def test_bounded_by_one_and_xp_plus_one(self):
        x_p = 12.0
        for pa in (0.0, 0.05, 0.3, 0.9, 1.0):
            rounds = cf.expected_ca_rounds(x_p, pa)
            assert 1.0 <= rounds <= x_p + 1.0


class TestExpectedCaWindow:
    def test_consistent_form(self):
        # E[W] = (2/b)E[X] - 2
        assert cf.expected_ca_window(30.0, 2) == pytest.approx(28.0)
        assert cf.expected_ca_window(30.0, 1) == pytest.approx(58.0)

    def test_paper_literal_form(self):
        # E[W] = (b/2)E[X] - 2
        assert cf.expected_ca_window(30.0, 4, paper_literal=True) == pytest.approx(58.0)

    def test_forms_agree_for_b2(self):
        # The paper's evaluation uses b=2 where both conventions coincide.
        assert cf.expected_ca_window(17.0, 2) == cf.expected_ca_window(17.0, 2, paper_literal=True)

    def test_clamped_at_one_packet(self):
        assert cf.expected_ca_window(1.0, 2) == 1.0

    def test_rejects_bad_b(self):
        with pytest.raises(ModelDomainError):
            cf.expected_ca_window(10.0, 0)


class TestAckBurstLossProbability:
    def test_zero_ack_loss(self):
        assert cf.ack_burst_loss_probability(0.0, 30.0) == 0.0

    def test_paper_form(self):
        # P_a = p_a^w
        assert cf.ack_burst_loss_probability(0.5, 4.0) == pytest.approx(0.5**4)

    def test_per_ack_form(self):
        # With b=2 only w/2 ACKs are sent per round.
        assert cf.ack_burst_loss_probability(0.5, 4.0, b=2, per_ack=True) == pytest.approx(0.25)

    def test_exponent_floor(self):
        # A round always carries at least one ACK.
        assert cf.ack_burst_loss_probability(0.3, 1.0, b=4, per_ack=True) == pytest.approx(0.3)

    def test_increasing_in_ack_loss(self):
        values = [cf.ack_burst_loss_probability(pa, 10.0) for pa in (0.1, 0.3, 0.5)]
        assert values == sorted(values)

    def test_decreasing_in_window(self):
        values = [cf.ack_burst_loss_probability(0.5, w) for w in (2.0, 5.0, 20.0)]
        assert values == sorted(values, reverse=True)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ModelDomainError):
            cf.ack_burst_loss_probability(1.0, 10.0)
        with pytest.raises(ModelDomainError):
            cf.ack_burst_loss_probability(0.5, 0.5)


class TestFixedPoint:
    def test_zero_ack_loss_is_zero(self):
        assert cf.solve_ack_burst_fixed_point(0.0, 0.01, 2, 64.0) == 0.0

    def test_fixed_point_is_self_consistent(self):
        ack_loss, data_loss, b, wmax = 0.4, 0.01, 1, 64.0
        pa = cf.solve_ack_burst_fixed_point(ack_loss, data_loss, b, wmax)
        x_p = cf.first_loss_round(data_loss, b)
        window = min(cf.expected_ca_window(cf.expected_ca_rounds(x_p, pa), b), wmax)
        assert pa == pytest.approx(cf.ack_burst_loss_probability(ack_loss, window, b), rel=1e-6)

    def test_low_ack_loss_negligible(self):
        # 0.66% per-ACK loss with a realistic window under independence
        # is astronomically unlikely to wipe a whole round.
        pa = cf.solve_ack_burst_fixed_point(0.0066, 0.0075, 2, 64.0)
        assert pa < 1e-20

    def test_lossless_data_path(self):
        pa = cf.solve_ack_burst_fixed_point(0.5, 0.0, 2, 8.0)
        assert 0.0 < pa < 1.0

    def test_monotone_in_ack_loss(self):
        values = [
            cf.solve_ack_burst_fixed_point(pa, 0.05, 1, 64.0)
            for pa in (0.2, 0.4, 0.6)
        ]
        assert values == sorted(values)


class TestTimeoutProbability:
    def test_padhye_q(self):
        assert cf.timeout_probability_padhye(30.0) == pytest.approx(0.1)
        assert cf.timeout_probability_padhye(2.0) == 1.0

    def test_padhye_q_rejects_bad_window(self):
        with pytest.raises(ModelDomainError):
            cf.timeout_probability_padhye(0.0)

    def test_no_burst_loss_reduces_to_padhye(self):
        assert cf.timeout_probability(0.2, 0.0, 25.0) == pytest.approx(0.2)

    def test_burst_loss_always_raises_q(self):
        q_p, x_p = 0.1, 25.0
        assert cf.timeout_probability(q_p, 0.05, x_p) > q_p

    def test_infinite_x_p_gives_certain_timeout(self):
        assert cf.timeout_probability(0.0, 0.1, math.inf) == 1.0

    def test_hand_computed(self):
        # Q = 1 - (1 - 0.5)(1 - 0.5)^1 = 0.75
        assert cf.timeout_probability(0.5, 0.5, 1.0) == pytest.approx(0.75)

    def test_bounded_by_one(self):
        assert cf.timeout_probability(0.9, 0.9, 50.0) <= 1.0


class TestTimeoutSequence:
    def test_consecutive_probability(self):
        # p = 1 - (1-q)(1-P_a)
        assert cf.consecutive_timeout_probability(0.3, 0.1) == pytest.approx(1 - 0.7 * 0.9)

    def test_consecutive_probability_no_losses(self):
        assert cf.consecutive_timeout_probability(0.0, 0.0) == 0.0

    def test_expected_timeouts_geometric(self):
        assert cf.expected_timeouts_per_sequence(0.0) == pytest.approx(1.0)
        assert cf.expected_timeouts_per_sequence(0.5) == pytest.approx(2.0)
        assert cf.expected_timeouts_per_sequence(0.75) == pytest.approx(4.0)

    def test_expected_timeouts_rejects_p_one(self):
        with pytest.raises(ModelDomainError):
            cf.expected_timeouts_per_sequence(1.0)

    def test_timeout_packets_paper_form(self):
        # (1-q)^{E[R]}
        assert cf.expected_timeout_packets(0.5, 2.0) == pytest.approx(0.25)

    def test_timeout_packets_linear_form(self):
        assert cf.expected_timeout_packets(0.5, 2.0, paper_form=False) == pytest.approx(1.0)

    def test_timeout_duration(self):
        # E[A^TO] = T f(p)/(1-p); at p=0 it is exactly T.
        assert cf.expected_timeout_duration(0.5, 0.0) == pytest.approx(0.5)

    def test_timeout_duration_grows_with_p(self):
        durations = [cf.expected_timeout_duration(0.5, p) for p in (0.0, 0.2, 0.5, 0.8)]
        assert durations == sorted(durations)

    def test_timeout_duration_hand_computed(self):
        t, p = 1.0, 0.5
        assert cf.expected_timeout_duration(t, p) == pytest.approx(cf.f_backoff(p) / 0.5)


class TestWindowLimitedComponents:
    def test_flat_rounds_padhye_clamped(self):
        # Large W_m with high loss pushes V_P negative -> clamp to 1.
        assert cf.flat_rounds_padhye(0.5, 100.0, 2) == 1.0

    def test_flat_rounds_padhye_low_loss(self):
        # Low loss: V_P ~ 1/(p W_m), dominated by the first term.
        value = cf.flat_rounds_padhye(1e-4, 10.0, 1)
        expected = (1 - 1e-4) / (1e-4 * 10.0) + 1 - 3 * 10.0 / 8.0
        assert value == pytest.approx(expected)

    def test_flat_rounds_lossless_diverges(self):
        assert math.isinf(cf.flat_rounds_padhye(0.0, 10.0, 2))

    def test_expected_flat_rounds_padhye_limit(self):
        assert cf.expected_flat_rounds(40.0, 0.0) == pytest.approx(40.0)

    def test_expected_flat_rounds_burst(self):
        # V_P=2, P_a=0.5 -> (1 - 0.25)/0.5 = 1.5
        assert cf.expected_flat_rounds(2.0, 0.5) == pytest.approx(1.5)

    def test_expected_flat_rounds_infinite_vp(self):
        assert cf.expected_flat_rounds(math.inf, 0.25) == pytest.approx(4.0)

    def test_expected_flat_rounds_decreasing_in_burst(self):
        values = [cf.expected_flat_rounds(20.0, pa) for pa in (0.0, 0.1, 0.5)]
        assert values == sorted(values, reverse=True)
