"""Unit tests for the Section V-B MPTCP analysis."""

import pytest

from repro.core.enhanced import enhanced_throughput
from repro.core.mptcp_model import (
    backup_mode_throughput,
    duplex_mode_throughput,
    effective_recovery_loss,
    mptcp_gain,
)
from repro.core.params import LinkParams


def path(**overrides) -> LinkParams:
    base = dict(
        rtt=0.12, timeout=0.8, data_loss=0.0075, ack_loss=0.0066,
        recovery_loss=0.3, wmax=64.0,
    )
    base.update(overrides)
    return LinkParams(**base)


class TestEffectiveRecoveryLoss:
    def test_independent_paths_multiply(self):
        assert effective_recovery_loss(0.3, 0.3) == pytest.approx(0.09)

    def test_perfect_backup_eliminates_q(self):
        assert effective_recovery_loss(0.3, 0.0) == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            effective_recovery_loss(1.0, 0.3)
        with pytest.raises(ValueError):
            effective_recovery_loss(0.3, -0.1)


class TestBackupMode:
    def test_beats_single_path(self):
        single = enhanced_throughput(path()).throughput
        multi = backup_mode_throughput(path(), path()).throughput
        assert multi > single

    def test_mode_label(self):
        assert backup_mode_throughput(path(), path()).mode == "backup"

    def test_only_primary_carries_data(self):
        prediction = backup_mode_throughput(path(), path())
        assert prediction.secondary is None
        assert prediction.subflow_throughputs == (prediction.primary.throughput,)

    def test_gain_grows_with_recovery_loss(self):
        # The worse q is, the more double retransmission helps.
        gains = [
            mptcp_gain(path(recovery_loss=q), mode="backup")
            for q in (0.1, 0.3, 0.5)
        ]
        assert gains == sorted(gains)


class TestDuplexMode:
    def test_roughly_doubles_identical_paths(self):
        single = enhanced_throughput(path()).throughput
        multi = duplex_mode_throughput(path(), path()).throughput
        # Sum of two subflows, each also enjoying the q reduction:
        # at least 2x, bounded by a generous 4x.
        assert 2.0 * single <= multi <= 4.0 * single

    def test_heterogeneous_paths_sum(self):
        prediction = duplex_mode_throughput(path(), path(rtt=0.3))
        assert prediction.throughput == pytest.approx(
            sum(prediction.subflow_throughputs)
        )

    def test_mode_label(self):
        assert duplex_mode_throughput(path(), path()).mode == "duplex"


class TestMptcpGain:
    def test_duplex_gain_exceeds_backup_gain(self):
        assert mptcp_gain(path(), mode="duplex") > mptcp_gain(path(), mode="backup")

    def test_default_alternate_is_clone(self):
        explicit = mptcp_gain(path(), path(), mode="duplex")
        implicit = mptcp_gain(path(), mode="duplex")
        assert implicit == pytest.approx(explicit)

    def test_positive_gains(self):
        assert mptcp_gain(path(), mode="duplex") > 0.0
        assert mptcp_gain(path(), mode="backup") > 0.0

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            mptcp_gain(path(), mode="turbo")

    def test_paper_ordering_bad_coverage_gains_more(self):
        # China-Telecom-like path (poor coverage -> heavy loss) gains
        # relatively more from a second path than China-Mobile-like LTE.
        telecom = path(data_loss=0.03, ack_loss=0.02, recovery_loss=0.45, rtt=0.25)
        mobile = path(data_loss=0.005, ack_loss=0.004, recovery_loss=0.25, rtt=0.1)
        assert mptcp_gain(telecom, mode="duplex") >= mptcp_gain(mobile, mode="duplex")
