"""Unit tests for the classic Padhye baseline (repro.core.padhye)."""

import math

import pytest

from repro.core.padhye import (
    padhye_approx_throughput,
    padhye_expected_window,
    padhye_full_throughput,
    padhye_timeout_probability,
)
from repro.core.params import LinkParams
from repro.util.errors import ModelDomainError


def params(**overrides) -> LinkParams:
    base = dict(rtt=0.1, timeout=0.5, data_loss=0.01, wmax=1000.0, b=1)
    base.update(overrides)
    return LinkParams(**base)


class TestExpectedWindow:
    def test_small_loss_asymptotics(self):
        # W(p) ~ sqrt(8/(3bp)) for small p.
        p = 1e-6
        assert padhye_expected_window(p, 1) == pytest.approx(math.sqrt(8 / (3 * p)), rel=1e-2)

    def test_decreasing_in_loss(self):
        ws = [padhye_expected_window(p, 1) for p in (0.001, 0.01, 0.1)]
        assert ws == sorted(ws, reverse=True)

    def test_decreasing_in_b(self):
        assert padhye_expected_window(0.01, 2) < padhye_expected_window(0.01, 1)

    def test_rejects_domain(self):
        with pytest.raises(ModelDomainError):
            padhye_expected_window(0.0, 1)


class TestTimeoutProbability:
    def test_tiny_window_certain(self):
        assert padhye_timeout_probability(0.1, 2.0) == 1.0

    def test_bounded(self):
        for p in (0.001, 0.01, 0.1, 0.5):
            for w in (4.0, 10.0, 50.0):
                assert 0.0 < padhye_timeout_probability(p, w) <= 1.0

    def test_approaches_3_over_w_for_small_p(self):
        w = 50.0
        assert padhye_timeout_probability(1e-7, w) == pytest.approx(3.0 / w, rel=0.1)

    def test_rejects_domain(self):
        with pytest.raises(ModelDomainError):
            padhye_timeout_probability(0.0, 10.0)
        with pytest.raises(ModelDomainError):
            padhye_timeout_probability(0.1, 0.5)


class TestFullModel:
    def test_positive(self):
        assert padhye_full_throughput(params()) > 0.0

    def test_decreasing_in_loss(self):
        tps = [padhye_full_throughput(params(data_loss=p)) for p in (0.001, 0.01, 0.05, 0.2)]
        assert tps == sorted(tps, reverse=True)

    def test_window_limited_branch(self):
        limited = padhye_full_throughput(params(data_loss=0.0001, wmax=8.0))
        assert limited <= 8.0 / 0.1 + 1e-9

    def test_lossless_is_wmax_over_rtt(self):
        assert padhye_full_throughput(params(data_loss=0.0, wmax=20.0)) == pytest.approx(200.0)

    def test_agrees_with_approx_in_moderate_regime(self):
        for p in (0.005, 0.01, 0.02):
            full = padhye_full_throughput(params(data_loss=p))
            approx = padhye_approx_throughput(params(data_loss=p))
            assert full == pytest.approx(approx, rel=0.25)


class TestApproxModel:
    def test_sqrt_law_small_loss(self):
        # Timeout term negligible at tiny p: B ~ (1/RTT) sqrt(3/(2bp)).
        p = 1e-7
        pr = params(data_loss=p, wmax=1e9)
        expected = math.sqrt(3 / (2 * p)) / pr.rtt
        assert padhye_approx_throughput(pr) == pytest.approx(expected, rel=0.01)

    def test_wmax_cap(self):
        pr = params(data_loss=1e-9, wmax=10.0)
        assert padhye_approx_throughput(pr) == pytest.approx(10.0 / pr.rtt)

    def test_decreasing_in_rtt(self):
        tps = [padhye_approx_throughput(params(rtt=r)) for r in (0.05, 0.1, 0.2)]
        assert tps == sorted(tps, reverse=True)

    def test_decreasing_in_timeout(self):
        tps = [padhye_approx_throughput(params(timeout=t)) for t in (0.2, 0.5, 1.0)]
        assert tps == sorted(tps, reverse=True)

    def test_lossless_is_wmax_over_rtt(self):
        assert padhye_approx_throughput(params(data_loss=0.0, wmax=5.0)) == pytest.approx(50.0)
