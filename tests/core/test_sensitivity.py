"""Unit tests for parameter sweeps and elasticities."""

import pytest

from repro.core.enhanced import ModelOptions
from repro.core.params import LinkParams
from repro.core.sensitivity import dominant_parameter, elasticity, sweep


def params(**overrides) -> LinkParams:
    base = dict(
        rtt=0.12, timeout=0.8, data_loss=0.0075, ack_loss=0.0066,
        recovery_loss=0.3, wmax=64.0,
    )
    base.update(overrides)
    return LinkParams(**base)


class TestSweep:
    def test_one_point_per_value(self):
        points = sweep(params(), "data_loss", [0.001, 0.01, 0.1])
        assert [point.value for point in points] == [0.001, 0.01, 0.1]
        assert all(point.field == "data_loss" for point in points)

    def test_throughput_accessor(self):
        point = sweep(params(), "rtt", [0.1])[0]
        assert point.throughput == point.prediction.throughput

    def test_b_cast_to_int(self):
        points = sweep(params(), "b", [1, 2])
        assert [point.prediction.params.b for point in points] == [1, 2]

    def test_unknown_field_raises(self):
        with pytest.raises(ValueError):
            sweep(params(), "mtu", [1500])

    def test_rtt_sweep_monotone(self):
        points = sweep(params(), "rtt", [0.05, 0.1, 0.2, 0.4])
        tps = [point.throughput for point in points]
        assert tps == sorted(tps, reverse=True)


class TestElasticity:
    def test_rtt_elasticity_negative(self):
        assert elasticity(params(), "rtt") < 0.0

    def test_data_loss_elasticity_negative(self):
        assert elasticity(params(), "data_loss") < 0.0

    def test_recovery_loss_elasticity_negative(self):
        assert elasticity(params(), "recovery_loss") < 0.0

    def test_rtt_elasticity_near_minus_one_when_rtt_dominates(self):
        # In a regime with negligible timeouts, TP ~ 1/RTT.
        benign = params(data_loss=0.01, ack_loss=0.0, recovery_loss=0.01, timeout=0.1)
        value = elasticity(benign, "rtt")
        assert -1.2 < value < -0.5

    def test_zero_value_raises(self):
        with pytest.raises(ValueError):
            elasticity(params(ack_loss=0.0), "ack_loss")


class TestDominantParameter:
    def test_returns_a_probed_field(self):
        field = dominant_parameter(params())
        assert field in ("rtt", "data_loss", "ack_loss", "recovery_loss")

    def test_skips_zero_fields(self):
        field = dominant_parameter(params(ack_loss=0.0))
        assert field != "ack_loss"

    def test_all_zero_raises(self):
        with pytest.raises(ValueError):
            dominant_parameter(params(ack_loss=0.0), fields=("ack_loss",))
