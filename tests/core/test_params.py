"""Unit tests for repro.core.params."""

import pytest

from repro.core.params import RECOMMENDED_RECOVERY_LOSS_RANGE, LinkParams
from repro.util.errors import ConfigurationError


def make(**overrides) -> LinkParams:
    base = dict(rtt=0.1, timeout=0.5, data_loss=0.01, ack_loss=0.005, wmax=64.0)
    base.update(overrides)
    return LinkParams(**base)


class TestValidation:
    def test_valid_construction(self):
        params = make(recovery_loss=0.3)
        assert params.rtt == 0.1
        assert params.recovery_loss == 0.3

    @pytest.mark.parametrize("rtt", [0.0, -1.0])
    def test_rejects_nonpositive_rtt(self, rtt):
        with pytest.raises(ConfigurationError):
            make(rtt=rtt)

    @pytest.mark.parametrize("timeout", [0.0, -0.5])
    def test_rejects_nonpositive_timeout(self, timeout):
        with pytest.raises(ConfigurationError):
            make(timeout=timeout)

    @pytest.mark.parametrize("loss", [-0.1, 1.0, 1.5])
    def test_rejects_bad_data_loss(self, loss):
        with pytest.raises(ConfigurationError):
            make(data_loss=loss)

    @pytest.mark.parametrize("loss", [-0.1, 1.0])
    def test_rejects_bad_ack_loss(self, loss):
        with pytest.raises(ConfigurationError):
            make(ack_loss=loss)

    @pytest.mark.parametrize("loss", [-0.1, 1.0])
    def test_rejects_bad_recovery_loss(self, loss):
        with pytest.raises(ConfigurationError):
            make(recovery_loss=loss)

    @pytest.mark.parametrize("b", [0, -1])
    def test_rejects_bad_b(self, b):
        with pytest.raises(ConfigurationError):
            make(b=b)

    def test_rejects_tiny_wmax(self):
        with pytest.raises(ConfigurationError):
            make(wmax=0.5)

    def test_zero_losses_allowed(self):
        params = make(data_loss=0.0, ack_loss=0.0, recovery_loss=0.0)
        assert params.data_loss == 0.0


class TestDefaults:
    def test_recovery_loss_defaults_to_recommended_midpoint(self):
        lo, hi = RECOMMENDED_RECOVERY_LOSS_RANGE
        assert make().recovery_loss == pytest.approx((lo + hi) / 2.0)

    def test_default_b_is_delayed_ack(self):
        assert make().b == 2


class TestHelpers:
    def test_with_returns_modified_copy(self):
        params = make()
        changed = params.with_(rtt=0.2)
        assert changed.rtt == 0.2
        assert params.rtt == 0.1  # original untouched

    def test_with_validates(self):
        with pytest.raises(ConfigurationError):
            make().with_(data_loss=2.0)

    def test_as_stationary_strips_hsr_features(self):
        params = make(data_loss=0.01, ack_loss=0.02, recovery_loss=0.35)
        stationary = params.as_stationary()
        assert stationary.ack_loss == 0.0
        assert stationary.recovery_loss == stationary.data_loss == 0.01
        # all other fields preserved
        assert stationary.rtt == params.rtt
        assert stationary.wmax == params.wmax
        assert stationary.b == params.b

    def test_frozen(self):
        with pytest.raises(Exception):
            make().rtt = 1.0
