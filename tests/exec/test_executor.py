"""Unit tests for the executor: backends, retries, quarantine, reports."""

import pytest

import repro.exec.executor as executor_module
from repro.exec import (
    Executor,
    FlowSpec,
    ProcessPoolBackend,
    SerialBackend,
    simulate_spec,
)
from repro.robustness.campaign import CampaignReport, RetryPolicy
from repro.robustness.watchdog import Watchdog, watchdog_scope
from repro.simulator.connection import ConnectionConfig
from repro.util.errors import ConfigurationError, SimulationError


def spec(seed=0, flow_id="flow", **overrides) -> FlowSpec:
    base = dict(duration=2.0, wmax=16.0)
    base.update(overrides)
    return FlowSpec(config=ConnectionConfig(**base), seed=seed, flow_id=flow_id)


class TestSimulateSpec:
    def test_returns_result_without_trace(self):
        result, trace = simulate_spec(spec(seed=1))
        assert result.throughput > 0.0
        assert trace is None

    def test_same_spec_same_bytes(self):
        first, _ = simulate_spec(spec(seed=4))
        second, _ = simulate_spec(spec(seed=4))
        assert first.log.data_sent == second.log.data_sent
        assert first.throughput == second.throughput


class TestBackendSelection:
    def test_for_workers_serial(self):
        assert isinstance(Executor.for_workers(1).backend, SerialBackend)
        assert isinstance(Executor.for_workers(0).backend, SerialBackend)

    def test_for_workers_pool(self):
        backend = Executor.for_workers(4).backend
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == 4

    def test_pool_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(0)

    def test_pool_with_one_worker_runs_inline(self):
        # No pool is spun up, so results come back regardless of pickling.
        outcome = ProcessPoolBackend(1).map(lambda x: x * 2, [1, 2, 3])
        assert outcome == [2, 4, 6]


class TestExecutorRun:
    def test_all_success_accounting(self):
        execution = Executor().run([spec(seed=i, flow_id=f"f/{i}") for i in range(3)])
        report = execution.report
        assert (report.attempted, report.succeeded, report.quarantined) == (3, 3, 0)
        assert report.retried == 0 and not report.failures
        assert all(outcome.ok for outcome in execution.outcomes)
        assert len(execution.results) == 3

    def test_report_accumulates_across_runs(self):
        report = CampaignReport()
        Executor().run([spec(seed=0)], report=report)
        Executor().run([spec(seed=1)], report=report)
        assert report.attempted == 2 and report.succeeded == 2

    def test_outcomes_keep_spec_order(self):
        execution = Executor().run(
            [spec(seed=i, flow_id=f"f/{i}") for i in range(4)]
        )
        assert [outcome.spec.flow_id for outcome in execution.outcomes] == [
            f"f/{i}" for i in range(4)
        ]


class TestRetryAndQuarantine:
    def _patch(self, monkeypatch, bad_seeds):
        real = executor_module.simulate_spec

        def breaking(sim_spec):
            if sim_spec.seed in bad_seeds:
                raise SimulationError("injected")
            return real(sim_spec)

        monkeypatch.setattr(executor_module, "simulate_spec", breaking)

    def test_transient_failure_retried_to_success(self, monkeypatch):
        base = 17
        self._patch(monkeypatch, {base})  # only attempt 0's seed fails
        execution = Executor().run([spec(seed=base, flow_id="flaky")])
        outcome = execution.outcomes[0]
        assert outcome.ok and outcome.attempts == 2
        assert [failure.attempt for failure in outcome.failures] == [0]
        report = execution.report
        assert (report.succeeded, report.retried, report.quarantined) == (1, 1, 0)
        # The retried attempt really ran under the derived seed.
        retry_seed = RetryPolicy().seed_for_attempt(base, 1)
        assert outcome.result is not None
        assert execution.report.failures[0].seed == base
        assert retry_seed != base

    def test_persistent_failure_quarantined(self, monkeypatch):
        policy = RetryPolicy()
        base = 23
        bad = {policy.seed_for_attempt(base, a) for a in range(policy.max_attempts)}
        self._patch(monkeypatch, bad)
        execution = Executor().run(
            [spec(seed=base, flow_id="broken"), spec(seed=1, flow_id="fine")]
        )
        broken, fine = execution.outcomes
        assert not broken.ok and broken.result is None
        assert broken.quarantine.flow_id == "broken"
        assert broken.quarantine.seed == base
        assert f"all {policy.max_attempts} attempts failed" in broken.quarantine.reason
        assert fine.ok  # per-flow isolation: the batch survives
        report = execution.report
        assert (report.attempted, report.succeeded, report.quarantined) == (2, 1, 1)
        assert len(report.failures) == policy.max_attempts

    def test_zero_retry_policy_fails_fast(self, monkeypatch):
        self._patch(monkeypatch, {5})
        execution = Executor(retry_policy=RetryPolicy(max_retries=0)).run(
            [spec(seed=5)]
        )
        outcome = execution.outcomes[0]
        assert not outcome.ok and outcome.attempts == 1
        assert execution.report.retried == 0


class TestAmbientWatchdog:
    def test_baked_into_specs_at_submit(self):
        ambient = Watchdog(max_events=10_000_000, wall_clock_s=600.0)
        with watchdog_scope(ambient):
            execution = Executor().run([spec(seed=2)])
        assert execution.outcomes[0].spec.watchdog == ambient

    def test_explicit_watchdog_wins(self):
        mine = Watchdog(max_events=5_000_000)
        with watchdog_scope(Watchdog(max_events=10_000_000)):
            execution = Executor().run([spec(seed=2).with_(watchdog=mine)])
        assert execution.outcomes[0].spec.watchdog == mine


def _double(x):
    # Module-level so the pool path can pickle it.
    return x * 2


class TestAutoBackend:
    def test_for_workers_auto_selects_auto_backend(self):
        from repro.exec import AutoBackend

        assert isinstance(Executor.for_workers("auto").backend, AutoBackend)

    def test_for_workers_rejects_other_strings(self):
        with pytest.raises(ConfigurationError):
            Executor.for_workers("turbo")

    def test_rejects_nonpositive_workers(self):
        from repro.exec import AutoBackend

        with pytest.raises(ConfigurationError):
            AutoBackend(0)

    def test_small_batch_stays_serial_and_records_decision(self):
        from repro.exec import AutoBackend

        backend = AutoBackend()
        assert backend.map(_double, [1, 2, 3]) == [2, 4, 6]
        decision = backend.last_decision
        assert decision["mode"] == "serial"
        assert decision["items"] == 3
        assert decision["cpu_count"] >= 1

    def test_cheap_batch_projects_serial(self, monkeypatch):
        from repro.exec import AutoBackend

        # Pretend the host has cores to spare: a near-zero per-item
        # cost must still project serial, because the pool's spawn
        # overhead can never be amortised.
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 8)
        backend = AutoBackend()
        assert backend.map(_double, list(range(50))) == [x * 2 for x in range(50)]
        decision = backend.last_decision
        assert decision["mode"] == "serial"
        assert decision["projected_pool_s"] > decision["projected_serial_s"]

    def test_forced_pool_is_byte_identical_to_serial(self, monkeypatch):
        from repro.exec import AutoBackend

        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 2)
        monkeypatch.setattr(AutoBackend, "SPAWN_BASELINE_S", -1e9)
        monkeypatch.setattr(AutoBackend, "SPAWN_PER_WORKER_S", 0.0)
        specs = [spec(seed=i, flow_id=f"auto/{i}") for i in range(4)]
        serial = Executor().run(specs)
        backend = AutoBackend(2)
        pooled = Executor(backend=backend).run(specs)
        assert backend.last_decision["mode"] == "pool"
        assert serial.report.to_json() == pooled.report.to_json()
        for left, right in zip(serial.outcomes, pooled.outcomes):
            import pickle

            assert pickle.dumps(left.result.log) == pickle.dumps(right.result.log)

    def test_auto_campaign_identical_to_serial(self):
        from repro.traces.generator import generate_dataset
        import pickle

        serial = generate_dataset(seed=2015, duration=5.0, flow_scale=0.02)
        auto = generate_dataset(
            seed=2015, duration=5.0, flow_scale=0.02, workers="auto"
        )
        assert serial.flow_count == auto.flow_count > 0
        assert [pickle.dumps(t) for t in serial.traces] == [
            pickle.dumps(t) for t in auto.traces
        ]
        assert serial.report.to_json() == auto.report.to_json()
