"""Unit tests for the supervision layer: policy, taxonomy, drain, wrap."""

import os
import signal

import pytest

from repro.exec import (
    Executor,
    FlowSpec,
    ProcessPoolBackend,
    SerialBackend,
    SupervisedBackend,
    SupervisorPolicy,
    clear_interrupt,
    current_supervisor_policy,
    interrupt_signal,
    supervise_scope,
)
from repro.exec.executor import _execute_payload
from repro.exec.supervise import _DrainGuard
from repro.robustness.campaign import RetryPolicy
from repro.simulator.connection import ConnectionConfig
from repro.util.errors import (
    ConfigurationError,
    DeadlineExceededError,
    WorkerCrashError,
)


def spec(seed=0, flow_id="flow", **overrides) -> FlowSpec:
    base = dict(duration=2.0, wmax=16.0)
    base.update(overrides)
    return FlowSpec(config=ConnectionConfig(**base), seed=seed, flow_id=flow_id)


def payloads(n, policy=None):
    policy = policy if policy is not None else RetryPolicy()
    return [(i, spec(seed=20 + i, flow_id=f"s/{i}"), policy) for i in range(n)]


class TestSupervisorPolicy:
    def test_defaults(self):
        policy = SupervisorPolicy()
        assert policy.deadline_s is None
        assert policy.max_worker_restarts == 8
        assert policy.drain_signals

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": 0.0},
            {"deadline_s": -1.0},
            {"max_worker_restarts": -1},
            {"grace_s": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(**kwargs)

    def test_scope_is_ambient_and_restored(self):
        assert current_supervisor_policy() is None
        policy = SupervisorPolicy(deadline_s=5.0)
        with supervise_scope(policy):
            assert current_supervisor_policy() is policy
        assert current_supervisor_policy() is None


class TestRetryTaxonomy:
    def test_classify_buckets(self):
        policy = RetryPolicy()
        assert policy.classify(ConfigurationError("bad")) == "deterministic"
        assert policy.classify(WorkerCrashError("died")) == "infrastructure"
        assert policy.classify(DeadlineExceededError("slow")) == "infrastructure"
        assert policy.classify(OSError("disk")) == "infrastructure"
        assert policy.classify(RuntimeError("flaky")) == "transient"

    def test_deterministic_never_retries(self):
        policy = RetryPolicy()
        assert not policy.retries("deterministic")
        assert policy.retries("transient")
        assert policy.retries("infrastructure")

    def test_configuration_error_quarantines_on_attempt_0(self):
        # cc variants resolve inside the attempt loop; a bad name is the
        # canonical deterministic failure
        bad = FlowSpec(
            config=ConnectionConfig(duration=2.0), seed=1, cc="no-such-cc"
        )
        outcome = _execute_payload((0, bad, RetryPolicy(max_retries=3)))
        assert not outcome.ok
        assert outcome.attempts == 1  # attempt 0 only — no retry burn
        assert [f.failure_class for f in outcome.failures] == ["deterministic"]
        assert "deterministic" in outcome.quarantine.reason

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base_s=0.5, backoff_factor=2.0,
                             backoff_jitter=0.1)
        first = policy.backoff_for_attempt(123, 1)
        again = policy.backoff_for_attempt(123, 1)
        assert first == again  # pure function of (seed, attempt)
        assert 0.5 <= first <= 0.5 * 1.1
        second = policy.backoff_for_attempt(123, 2)
        assert 1.0 <= second <= 1.0 * 1.1
        assert policy.backoff_for_attempt(123, 0) == 0.0
        # different seeds decorrelate
        assert policy.backoff_for_attempt(123, 1) != policy.backoff_for_attempt(999, 1)

    def test_zero_base_never_sleeps(self):
        policy = RetryPolicy()
        assert policy.backoff_for_attempt(7, 1) == 0.0
        assert policy.backoff_for_attempt(7, 5) == 0.0


class TestSupervisedBackendInline:
    def test_serial_inner_byte_identical_to_bare(self):
        batch = payloads(3)
        bare = SerialBackend().map(_execute_payload, batch)
        supervised = SupervisedBackend(SerialBackend()).map(
            _execute_payload, batch
        )
        assert len(bare) == len(supervised)
        for a, b in zip(bare, supervised):
            assert a.spec.flow_id == b.spec.flow_id
            assert a.result.throughput == b.result.throughput
            assert a.result.log.data_sent == b.result.log.data_sent

    def test_name_nests(self):
        backend = SupervisedBackend(SerialBackend())
        assert backend.name == "supervised[serial]"

    def test_executor_wraps_by_default(self):
        executor = Executor()
        effective = executor._effective_backend()
        assert isinstance(effective, SupervisedBackend)
        assert isinstance(effective.inner, SerialBackend)

    def test_executor_honours_ambient_policy(self):
        policy = SupervisorPolicy(max_worker_restarts=2)
        with supervise_scope(policy):
            effective = Executor()._effective_backend()
        assert effective.policy is policy

    def test_explicit_supervised_backend_not_rewrapped(self):
        backend = SupervisedBackend(SerialBackend())
        assert Executor(backend=backend)._effective_backend() is backend

    def test_progress_counts_every_flow(self):
        seen = []
        SupervisedBackend(SerialBackend()).map(
            _execute_payload, payloads(3), seen.append
        )
        assert seen == [1, 2, 3]


class TestSupervisedBackendPooled:
    def test_pool_inner_matches_serial_bytes(self):
        batch = payloads(4)
        serial = SupervisedBackend(SerialBackend()).map(_execute_payload, batch)
        pooled = SupervisedBackend(ProcessPoolBackend(2)).map(
            _execute_payload, batch
        )
        for a, b in zip(serial, pooled):
            assert a.result.throughput == b.result.throughput
            assert a.result.log.data_sent == b.result.log.data_sent
            assert a.failures == b.failures

    def test_deadline_forces_pool_even_for_serial_inner(self):
        # a 1-worker pool is stood up so preemption has a process to
        # kill; results must still match inline execution
        batch = payloads(2)
        inline = SupervisedBackend(SerialBackend()).map(_execute_payload, batch)
        pooled = SupervisedBackend(
            SerialBackend(), policy=SupervisorPolicy(deadline_s=60.0)
        ).map(_execute_payload, batch)
        for a, b in zip(inline, pooled):
            assert a.result.throughput == b.result.throughput


class TestDrainGuard:
    def test_sigterm_sets_flag_instead_of_dying(self):
        clear_interrupt()
        with _DrainGuard(enabled=True) as guard:
            assert guard.installed
            os.kill(os.getpid(), signal.SIGTERM)
            assert guard.tripped
            assert guard.signum == signal.SIGTERM
        assert interrupt_signal() == signal.SIGTERM
        clear_interrupt()
        assert interrupt_signal() is None

    def test_handlers_restored_on_exit(self):
        before = signal.getsignal(signal.SIGTERM)
        with _DrainGuard(enabled=True):
            assert signal.getsignal(signal.SIGTERM) != before
        assert signal.getsignal(signal.SIGTERM) == before

    def test_disabled_guard_is_inert(self):
        before = signal.getsignal(signal.SIGINT)
        with _DrainGuard(enabled=False) as guard:
            assert not guard.installed
            assert signal.getsignal(signal.SIGINT) == before

    def test_drain_skips_remaining_and_marks_interrupted(self):
        clear_interrupt()
        backend = SupervisedBackend(SerialBackend())
        batch = payloads(4)
        fired = []

        def tripping(payload):
            # trip the drain flag mid-batch, as a signal handler would
            outcome = _execute_payload(payload)
            fired.append(payload[1].flow_id)
            if len(fired) == 2:
                os.kill(os.getpid(), signal.SIGTERM)
            return outcome

        outcomes = backend.map(tripping, batch)
        assert backend.last_interrupted
        assert fired == ["s/0", "s/1"]
        assert [o.skipped for o in outcomes] == [False, False, True, True]
        assert [o.attempts for o in outcomes] == [1, 1, 0, 0]
        clear_interrupt()

    def test_executor_marks_report_interrupted(self):
        clear_interrupt()
        specs = [payload[1] for payload in payloads(3)]
        calls = []
        import repro.exec.executor as executor_module

        real = executor_module.simulate_spec

        def tripping(s):
            calls.append(s.flow_id)
            if len(calls) == 1:
                os.kill(os.getpid(), signal.SIGTERM)
            return real(s)

        executor_module.simulate_spec, saved = tripping, real
        try:
            result = Executor().run(specs)
        finally:
            executor_module.simulate_spec = saved
        assert result.report.interrupted
        assert result.report.attempted == 1
        assert result.report.succeeded == 1
        assert "interrupted" in result.report.summary()
        assert '"interrupted":true' in result.report.to_json()
        clear_interrupt()
