"""The chaos determinism gate.

A seeded :class:`ChaosPlan` that kills at least one worker, hangs at
least one flow past its deadline, and corrupts at least one store shard
must leave the campaign *complete* — every flow eventually succeeds —
and two runs of the same chaotic campaign must produce byte-identical
:meth:`CampaignReport.to_json` output.  This is the contract that makes
a degraded run debuggable: chaos is data, not noise.
"""

import pytest

from repro.exec import Executor, ProcessPoolBackend
from repro.exec.chaos import ChaosBackend, ChaosPlan
from repro.exec.spec import FlowSpec
from repro.exec.supervise import SupervisorPolicy
from repro.hsr import CHINA_MOBILE, hsr_scenario
from repro.store import ResultStore, flow_key
from repro.store.scope import store_scope
from repro.util.errors import ConfigurationError

FLOW_IDS = [f"f/{i}" for i in range(6)]


def specs():
    return [
        FlowSpec(
            scenario=hsr_scenario(CHINA_MOBILE), duration=3.0, seed=50 + i,
            flow_id=flow_id,
        )
        for i, flow_id in enumerate(FLOW_IDS)
    ]


class TestChaosPlan:
    def test_sample_is_deterministic(self):
        a = ChaosPlan.sample(7, FLOW_IDS, crashes=1, hangs=1, corruptions=1)
        b = ChaosPlan.sample(7, FLOW_IDS, crashes=1, hangs=1, corruptions=1)
        assert a == b

    def test_sample_pools_are_disjoint(self):
        plan = ChaosPlan.sample(
            7, FLOW_IDS, crashes=2, hangs=1, raises=1, corruptions=2
        )
        pools = [
            set(plan.crash), set(plan.hang), set(plan.raise_),
            set(plan.corrupt_store),
        ]
        union = set().union(*pools)
        assert len(union) == sum(len(pool) for pool in pools) == 6

    def test_sample_rejects_too_many_victims(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan.sample(7, FLOW_IDS[:2], crashes=2, hangs=1)

    def test_overlapping_actions_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan(crash={"f/0": (0,)}, hang={"f/0": (0,)})

    def test_action_for_fires_once(self):
        plan = ChaosPlan(crash={"f/0": (0,)}, hang={"f/1": (1,)}, hang_s=5.0)
        assert plan.action_for("f/0", 0) == ("crash",)
        assert plan.action_for("f/0", 1) is None
        assert plan.action_for("f/1", 0) is None
        assert plan.action_for("f/1", 1) == ("hang", 5.0)
        assert plan.action_for("f/2", 0) is None

    def test_needs_pool(self):
        assert ChaosPlan(crash={"f/0": (0,)}).needs_pool
        assert ChaosPlan(hang={"f/0": (0,)}).needs_pool
        assert ChaosPlan(raise_={"f/0": (0,)}).needs_pool
        assert not ChaosPlan(corrupt_store=("f/0",)).needs_pool

    def test_summary_counts(self):
        plan = ChaosPlan.sample(7, FLOW_IDS, crashes=1, hangs=1, corruptions=1)
        assert plan.summary() == (
            "chaos plan: 1 crashes, 1 hangs (30s), 0 raises, "
            "1 corrupted entries"
        )


class TestDeterminismGate:
    """The acceptance criterion, verbatim."""

    def _run_chaotic(self, store_root):
        plan = ChaosPlan.sample(
            7, FLOW_IDS, crashes=1, hangs=1, corruptions=1, hang_s=30.0
        )
        # Warm exactly the corruption victim so there is a shard to rot;
        # the crash/hang victims must stay cold or the cache would serve
        # them before the supervisor ever sees them.
        victims = set(plan.corrupt_store)
        assert victims
        batch = specs()
        with store_scope(store_root):
            Executor().run([s for s in batch if s.flow_id in victims])
            backend = ChaosBackend(
                plan,
                ProcessPoolBackend(2),
                policy=SupervisorPolicy(deadline_s=2.0),
            )
            result = Executor(backend=backend).run(batch)
        return plan, backend, result

    def test_chaotic_campaign_completes_and_replays_byte_identically(
        self, tmp_path
    ):
        plan, backend_a, first = self._run_chaotic(tmp_path / "a")
        _, backend_b, second = self._run_chaotic(tmp_path / "b")

        # the plan really did all three kinds of damage
        assert plan.crash and plan.hang and plan.corrupt_store
        assert backend_a.corrupted  # a shard was truncated on disk
        classes = {f.failure_class for f in first.report.failures}
        assert {"worker_crash", "deadline"} <= classes

        # ...and the campaign still completed, with the damage repaired
        report = first.report
        assert report.attempted == len(FLOW_IDS)
        assert report.succeeded == len(FLOW_IDS)
        assert report.quarantined == 0
        assert not report.interrupted
        assert report.cache_corrupt == 1  # the rotten shard, recomputed
        store = ResultStore(tmp_path / "a")
        assert store.verify()[1] == []  # re-stored cleanly

        # the gate: two runs, byte-identical report JSON
        assert first.report.to_json() == second.report.to_json()

    def test_corruption_hits_only_existing_entries(self, tmp_path):
        # A cold store has nothing to truncate: the corrupting plan is
        # a no-op, not an error.
        plan = ChaosPlan(corrupt_store=(FLOW_IDS[0],))
        backend = ChaosBackend(plan, store=ResultStore(tmp_path / "cold"))
        result = Executor(backend=backend).run(specs()[:2])
        assert backend.corrupted == {}
        assert result.report.succeeded == 2

    def test_corrupted_shard_is_actually_rotten(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        batch = specs()[:1]
        with store_scope(store.root):
            Executor().run(batch)
        plan = ChaosPlan(corrupt_store=(batch[0].flow_id,))
        backend = ChaosBackend(plan, store=store)
        backend.prepare_batch([(0, batch[0], None)])
        key = flow_key(batch[0])
        assert backend.corrupted == {batch[0].flow_id: key}
        payload, was_corrupt = store.get(key)
        assert payload is None and was_corrupt
