"""Unit tests for FlowSpec: validation, copying, resolution."""

import pickle

import pytest

from repro.exec import FlowSpec
from repro.hsr import hsr_scenario
from repro.simulator.channel import NoLoss, TraceDrivenLoss
from repro.simulator.connection import ConnectionConfig
from repro.traces.events import FlowMetadata
from repro.util.errors import ConfigurationError


def config(**overrides) -> ConnectionConfig:
    base = dict(duration=10.0, wmax=32.0)
    base.update(overrides)
    return ConnectionConfig(**base)


def metadata(seed=0) -> FlowMetadata:
    return FlowMetadata(
        flow_id="test/flow", provider="CMCC", technology="LTE",
        scenario="hsr", capture_month="2015-10", phone_model="test",
        duration=10.0, seed=seed,
    )


class TestValidation:
    def test_needs_scenario_or_config(self):
        with pytest.raises(ConfigurationError, match="scenario or an explicit"):
            FlowSpec()

    def test_scenario_needs_duration(self):
        with pytest.raises(ConfigurationError, match="duration"):
            FlowSpec(scenario=hsr_scenario())

    def test_duration_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="positive"):
            FlowSpec(config=config(), duration=-1.0)

    def test_validate_needs_metadata(self):
        with pytest.raises(ConfigurationError, match="metadata"):
            FlowSpec(config=config(), validate=True)

    def test_cc_must_be_named(self):
        with pytest.raises(ConfigurationError, match="cc"):
            FlowSpec(config=config(), cc="")


class TestScenarioRef:
    def test_ref_resolves_to_compiled_scenario(self):
        from repro.scenarios import compile_scenario

        spec = FlowSpec(scenario_ref="hsr-china-mobile", duration=5.0)
        assert spec.scenario == compile_scenario("hsr-china-mobile")

    def test_ref_and_scenario_are_exclusive(self):
        with pytest.raises(ConfigurationError, match="not both"):
            FlowSpec(
                scenario=hsr_scenario(),
                scenario_ref="hsr-china-mobile",
                duration=5.0,
            )

    def test_unknown_ref_raises(self):
        with pytest.raises(ConfigurationError, match="neither a known"):
            FlowSpec(scenario_ref="no-such-scenario", duration=5.0)

    def test_ref_spec_runs_like_direct_spec(self):
        spec = FlowSpec(scenario_ref="driving-china-telecom", duration=5.0, seed=2)
        resolved = spec.resolve()
        assert resolved.config.duration == 5.0

    def test_ref_spec_pickles(self):
        spec = FlowSpec(scenario_ref="hsr-china-unicom", duration=5.0, seed=4)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestDerived:
    def test_effective_duration_prefers_explicit(self):
        spec = FlowSpec(config=config(duration=10.0), duration=3.0)
        assert spec.effective_duration == 3.0

    def test_effective_duration_falls_back_to_config(self):
        spec = FlowSpec(config=config(duration=10.0))
        assert spec.effective_duration == 10.0

    def test_channel_seed_defaults_to_seed(self):
        assert FlowSpec(config=config(), seed=7).effective_channel_seed == 7
        assert (
            FlowSpec(config=config(), seed=7, channel_seed=9).effective_channel_seed
            == 9
        )


class TestWith:
    def test_copies_with_changes(self):
        spec = FlowSpec(config=config(), seed=1)
        changed = spec.with_(seed=2, cc="newreno")
        assert changed.seed == 2 and changed.cc == "newreno"
        assert spec.seed == 1  # frozen original untouched

    def test_unknown_field_raises(self):
        spec = FlowSpec(config=config())
        with pytest.raises(ConfigurationError, match="sead"):
            spec.with_(sead=2)


class TestForAttempt:
    def test_reseeds_connection(self):
        spec = FlowSpec(config=config(), seed=1)
        retry = spec.for_attempt(99)
        assert retry.seed == 99
        assert retry.channel_seed is None  # still follows seed

    def test_explicit_channel_seed_follows(self):
        spec = FlowSpec(config=config(), seed=1, channel_seed=5)
        retry = spec.for_attempt(99)
        assert retry.channel_seed == 99

    def test_metadata_seed_follows(self):
        spec = FlowSpec(config=config(), seed=1, metadata=metadata(seed=1))
        retry = spec.for_attempt(99)
        assert retry.metadata.seed == 99


class TestResolve:
    def test_explicit_channels_deep_copied(self):
        loss = TraceDrivenLoss([3, 4])
        spec = FlowSpec(config=config(), data_loss=loss)
        resolved = spec.resolve()
        assert resolved.data_loss is not loss
        # Two resolutions never share channel state either.
        assert spec.resolve().data_loss is not resolved.data_loss

    def test_missing_channels_default_to_noloss(self):
        resolved = FlowSpec(config=config()).resolve()
        assert isinstance(resolved.data_loss, NoLoss)
        assert isinstance(resolved.ack_loss, NoLoss)

    def test_duration_overrides_config(self):
        resolved = FlowSpec(config=config(duration=10.0), duration=4.0).resolve()
        assert resolved.config.duration == 4.0

    def test_scenario_build_uses_channel_seed(self):
        spec = FlowSpec(scenario=hsr_scenario(), duration=5.0, seed=3)
        resolved = spec.resolve()
        assert resolved.config.duration == 5.0
        assert not isinstance(resolved.data_loss, NoLoss)


class TestPicklability:
    def test_scenario_spec_roundtrips(self):
        spec = FlowSpec(
            scenario=hsr_scenario(), duration=5.0, seed=3,
            metadata=metadata(seed=3), flow_id="t/0",
        )
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_explicit_spec_roundtrips(self):
        spec = FlowSpec(
            config=config(), data_loss=TraceDrivenLoss([1]), seed=2
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.seed == 2 and clone.config == spec.config
