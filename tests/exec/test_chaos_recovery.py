"""Recovery mechanics under injected fabric faults.

Where ``test_chaos_determinism`` proves the headline gate, this suite
exercises each supervision path on its own: crash-once-then-recover,
killer isolation among concurrent workers, injected worker-side raises,
give-up after repeated crashes, the restart budget, and deadline
preemption of a hung flow.
"""

import pytest

from repro.exec import Executor, ProcessPoolBackend, SerialBackend
from repro.exec.chaos import ChaosBackend, ChaosPlan
from repro.exec.spec import FlowSpec
from repro.exec.supervise import SupervisorPolicy
from repro.robustness.campaign import RetryPolicy
from repro.simulator.connection import ConnectionConfig


def spec(seed=0, flow_id="flow"):
    return FlowSpec(
        config=ConnectionConfig(duration=2.0, wmax=16.0),
        seed=seed,
        flow_id=flow_id,
    )


def specs(n):
    return [spec(seed=30 + i, flow_id=f"f/{i}") for i in range(n)]


class TestCrashRecovery:
    def test_crash_once_then_recover(self):
        plan = ChaosPlan(crash={"f/1": (0,)})
        backend = ChaosBackend(plan, ProcessPoolBackend(2))
        result = Executor(backend=backend).run(specs(4))
        report = result.report
        assert report.succeeded == 4
        assert report.quarantined == 0
        assert report.retried == 1  # exactly the one re-execution
        (failure,) = report.failures
        assert failure.flow_id == "f/1"
        assert failure.attempt == 0
        assert failure.failure_class == "worker_crash"
        assert failure.error_type == "WorkerCrashError"
        assert "pool rebuilt" in failure.error
        # the crashed flow's outcome still carries a result
        victim = next(o for o in result.outcomes if o.spec.flow_id == "f/1")
        assert victim.ok and victim.result is not None
        assert victim.attempts == 2

    def test_isolation_pins_blame_on_the_killer(self):
        # Two workers, one killer: whoever shares the pool at crash
        # time is a bystander and must end up with a clean record.
        plan = ChaosPlan(crash={"f/2": (0,)})
        backend = ChaosBackend(plan, ProcessPoolBackend(2))
        result = Executor(backend=backend).run(specs(6))
        report = result.report
        assert report.succeeded == 6
        assert [f.flow_id for f in report.failures] == ["f/2"]
        for outcome in result.outcomes:
            if outcome.spec.flow_id != "f/2":
                assert outcome.failures == []
                assert outcome.attempts == 1

    def test_pool_timing_does_not_change_report_bytes(self):
        plan = ChaosPlan(crash={"f/0": (0,), "f/3": (0,)})
        runs = []
        for _ in range(2):
            backend = ChaosBackend(plan, ProcessPoolBackend(2))
            runs.append(Executor(backend=backend).run(specs(5)))
        assert runs[0].report.to_json() == runs[1].report.to_json()
        assert runs[0].report.succeeded == 5

    def test_repeated_crash_exhausts_budget_and_quarantines(self):
        plan = ChaosPlan(crash={"f/0": (0, 1, 2)})
        backend = ChaosBackend(plan, ProcessPoolBackend(1))
        result = Executor(
            backend=backend, retry_policy=RetryPolicy(max_retries=2)
        ).run(specs(2))
        report = result.report
        assert report.succeeded == 1
        assert report.quarantined == 1
        assert len(report.failures) == 3  # one per execution
        assert all(f.failure_class == "worker_crash" for f in report.failures)
        (record,) = report.quarantines
        assert record.flow_id == "f/0"
        assert "gave up after 3 failed executions" in record.reason
        victim = result.outcomes[0]
        assert not victim.ok and victim.attempts == 3

    def test_restart_budget_stops_the_bleeding(self):
        # With a zero restart budget the first crash is terminal: the
        # supervisor quarantines everything unfinished instead of
        # rebuilding pools forever against sick infrastructure.
        plan = ChaosPlan(crash={"f/0": (0,)})
        backend = ChaosBackend(
            plan,
            ProcessPoolBackend(1),
            policy=SupervisorPolicy(max_worker_restarts=0),
        )
        result = Executor(backend=backend).run(specs(3))
        report = result.report
        assert report.attempted == 3
        assert report.quarantined == 3
        assert all(
            "worker-restart budget exhausted" in record.reason
            for record in report.quarantines
        )


class TestInjectedRaise:
    def test_raise_is_classified_and_retried(self):
        plan = ChaosPlan(raise_={"f/1": (0,)})
        backend = ChaosBackend(plan, SerialBackend())
        result = Executor(backend=backend).run(specs(3))
        report = result.report
        assert report.succeeded == 3
        (failure,) = report.failures
        assert failure.flow_id == "f/1"
        assert failure.error_type == "ChaosError"
        assert failure.failure_class == "transient"
        assert "chaos-injected failure" in failure.error

    def test_serial_inner_is_forced_into_a_pool(self):
        # raise actions only exist in the worker-side trampoline, so a
        # raise-only plan must force the pool even for a serial inner.
        plan = ChaosPlan(raise_={"f/0": (0,)})
        assert plan.needs_pool
        backend = ChaosBackend(plan, SerialBackend())
        result = Executor(backend=backend).run(specs(1))
        assert len(result.report.failures) == 1  # the action really fired


class TestDeadlinePreemption:
    def test_hung_flow_is_killed_and_retried(self):
        plan = ChaosPlan(hang={"f/1": (0,)}, hang_s=30.0)
        backend = ChaosBackend(
            plan,
            ProcessPoolBackend(2),
            policy=SupervisorPolicy(deadline_s=1.5),
        )
        result = Executor(backend=backend).run(specs(3))
        report = result.report
        assert report.succeeded == 3
        (failure,) = report.failures
        assert failure.flow_id == "f/1"
        assert failure.failure_class == "deadline"
        assert failure.error_type == "DeadlineExceededError"
        assert "1.5s wall-clock deadline" in failure.error
        victim = next(o for o in result.outcomes if o.spec.flow_id == "f/1")
        assert victim.ok and victim.attempts == 2

    def test_bystanders_of_a_preemption_stay_clean(self):
        plan = ChaosPlan(hang={"f/0": (0,)}, hang_s=30.0)
        backend = ChaosBackend(
            plan,
            ProcessPoolBackend(2),
            policy=SupervisorPolicy(deadline_s=1.5),
        )
        result = Executor(backend=backend).run(specs(4))
        assert result.report.succeeded == 4
        for outcome in result.outcomes:
            if outcome.spec.flow_id != "f/0":
                assert outcome.failures == []
