"""Lockstep campaign mode: byte-identity, eligibility, and fallback.

The lockstep backend's whole value rests on one claim — N independent
flows advanced on one shared event wheel produce exactly the outcomes
of N solo runs — so these tests compare against the serial backend
pickle-for-pickle, and then probe every edge where lockstep must step
aside (ineligible specs, ambient watchdogs, failing groups, forced
pools).
"""

import pickle

import pytest

from repro.exec import Executor, FlowSpec, LockstepBackend
from repro.exec.executor import AutoBackend, _execute_payload
from repro.hsr import CHINA_MOBILE, CHINA_TELECOM, hsr_scenario
from repro.robustness import Watchdog, watchdog_scope
from repro.simulator import ConnectionConfig, FlowHarness, Simulator, run_lockstep
from repro.util.errors import ConfigurationError


def _specs(n=6, duration=4.0, **kwargs):
    return [
        FlowSpec(
            scenario=hsr_scenario(CHINA_TELECOM),
            duration=duration,
            seed=100 + index,
            flow_id=f"lockstep/{index}",
            **kwargs,
        )
        for index in range(n)
    ]


def _log_pickles(execution):
    return [
        pickle.dumps(outcome.result.log) if outcome.result is not None else None
        for outcome in execution.outcomes
    ]


class TestRunLockstepPrimitive:
    def test_empty_setups_short_circuit(self):
        assert run_lockstep([], 5.0) == []

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            run_lockstep([lambda sim: None], 0.0)

    def test_two_flows_match_solo_runs(self):
        config = ConnectionConfig(duration=3.0)

        def setup_for(seed):
            return lambda sim: FlowHarness(config, simulator=sim, seed=seed)

        shared = run_lockstep([setup_for(1), setup_for(2)], 3.0)
        solo = []
        for seed in (1, 2):
            sim = Simulator()
            harness = FlowHarness(config, simulator=sim, seed=seed)
            sim.run(until=3.0)
            solo.append(harness.result())
        for left, right in zip(shared, solo):
            assert pickle.dumps(left.log) == pickle.dumps(right.log)


class TestLockstepByteIdentity:
    def test_homogeneous_batch_matches_serial(self):
        specs = _specs()
        serial = Executor.for_workers(1).run(specs)
        lockstep = Executor.for_workers("lockstep").run(specs)
        assert serial.report.to_json() == lockstep.report.to_json()
        assert _log_pickles(serial) == _log_pickles(lockstep)

    def test_mixed_durations_grouped_and_identical(self):
        specs = _specs(3, duration=3.0) + _specs(3, duration=5.0)
        serial = Executor.for_workers(1).run(specs)
        lockstep = Executor.for_workers("lockstep").run(specs)
        assert serial.report.to_json() == lockstep.report.to_json()
        assert _log_pickles(serial) == _log_pickles(lockstep)

    def test_mixed_scenarios_and_cc_identical(self):
        specs = [
            FlowSpec(
                scenario=hsr_scenario(CHINA_MOBILE if index % 2 else CHINA_TELECOM),
                duration=4.0,
                seed=50 + index,
                cc="newreno" if index % 2 else "reno",
                flow_id=f"mixed/{index}",
            )
            for index in range(4)
        ]
        serial = Executor.for_workers(1).run(specs)
        lockstep = Executor.for_workers("lockstep").run(specs)
        assert serial.report.to_json() == lockstep.report.to_json()
        assert _log_pickles(serial) == _log_pickles(lockstep)

    def test_telemetry_specs_fall_back_and_match(self):
        # Telemetry collection is per-simulator, so those specs are
        # ineligible — they must still run (per-item) and match serial.
        specs = _specs(4)
        serial = Executor.for_workers(1, telemetry=True).run(specs)
        lockstep = Executor.for_workers("lockstep", telemetry=True).run(specs)
        assert serial.report.to_json() == lockstep.report.to_json()
        assert _log_pickles(serial) == _log_pickles(lockstep)
        assert all(
            outcome.result.telemetry is not None for outcome in lockstep.outcomes
        )


class TestEligibilityAndPlan:
    def test_plan_partitions_by_duration(self):
        backend = LockstepBackend()
        specs = _specs(2, duration=3.0) + _specs(2, duration=5.0)
        payloads = [(index, spec, None) for index, spec in enumerate(specs)]
        chunks, singles = backend.plan(_execute_payload, payloads)
        assert singles == []
        assert chunks == [[0, 1], [2, 3]]

    def test_watchdog_spec_is_single(self):
        backend = LockstepBackend()
        specs = _specs(2)
        specs.append(specs[0].with_(watchdog=Watchdog(max_events=10**7)))
        payloads = [(index, spec, None) for index, spec in enumerate(specs)]
        chunks, singles = backend.plan(_execute_payload, payloads)
        assert chunks == [[0, 1]]
        assert singles == [2]

    def test_ambient_watchdog_disables_the_plan(self):
        backend = LockstepBackend()
        payloads = [(index, spec, None) for index, spec in enumerate(_specs(2))]
        with watchdog_scope(Watchdog(max_events=10**7)):
            assert backend.plan(_execute_payload, payloads) is None

    def test_foreign_fn_falls_back_to_serial(self):
        backend = LockstepBackend()
        assert backend.map(lambda item: item * 2, [1, 2, 3]) == [2, 4, 6]

    def test_group_size_caps_chunks(self):
        backend = LockstepBackend(group_size=2)
        payloads = [(index, spec, None) for index, spec in enumerate(_specs(5))]
        chunks, singles = backend.plan(_execute_payload, payloads)
        assert [len(chunk) for chunk in chunks] == [2, 2, 1]
        assert singles == []

    def test_bad_group_size_rejected(self):
        with pytest.raises(ConfigurationError):
            LockstepBackend(group_size=0)


class TestGroupFallback:
    def test_failing_spec_quarantined_groupmates_unharmed(self):
        # An unknown cc variant raises while the group is being wired:
        # the whole shared simulator is discarded and every payload
        # re-runs per-item, so the bad spec quarantines exactly as it
        # would serially and its groupmates' bytes are untouched.
        specs = _specs(4)
        specs[2] = specs[2].with_(cc="no-such-sender")
        serial = Executor.for_workers(1).run(specs)
        lockstep = Executor.for_workers("lockstep").run(specs)
        assert serial.report.to_json() == lockstep.report.to_json()
        assert _log_pickles(serial) == _log_pickles(lockstep)
        assert lockstep.outcomes[2].quarantine is not None
        assert all(
            lockstep.outcomes[index].ok for index in (0, 1, 3)
        )


def _fake_clock(values):
    """A clock() stub that replays ``values`` then repeats the last."""
    remaining = list(values)

    def clock():
        if len(remaining) > 1:
            return remaining.pop(0)
        return remaining[0]

    return clock


class TestAutoPicksLockstep:
    # The lockstep race reads the clock 4 times: around the serial
    # head and around the shared-wheel group.  [0, 10, 10, 10.1] makes
    # the serial head look slow and the group fast (and vice versa),
    # so the timing-based decision is exercised deterministically.

    def test_large_homogeneous_batch_when_probe_favors_lockstep(self):
        specs = _specs(AutoBackend.LOCKSTEP_MIN_ITEMS)
        backend = AutoBackend(clock=_fake_clock([0.0, 10.0, 10.0, 10.1]))
        execution = Executor(backend=backend).run(specs)
        assert backend.last_decision is not None
        assert backend.last_decision["mode"] == "lockstep"
        assert all(outcome.ok for outcome in execution.outcomes)
        serial = Executor.for_workers(1).run(specs)
        assert serial.report.to_json() == execution.report.to_json()
        assert _log_pickles(serial) == _log_pickles(execution)

    def test_serial_when_probe_favors_serial(self):
        specs = _specs(AutoBackend.LOCKSTEP_MIN_ITEMS)
        backend = AutoBackend(clock=_fake_clock([0.0, 0.001, 0.001, 10.0]))
        execution = Executor(backend=backend).run(specs)
        assert backend.last_decision["mode"] == "serial"
        assert backend.last_decision["lockstep_probe_s_per_flow"] > 0
        serial = Executor.for_workers(1).run(specs)
        assert serial.report.to_json() == execution.report.to_json()
        assert _log_pickles(serial) == _log_pickles(execution)

    def test_small_batch_not_a_candidate(self):
        backend = AutoBackend()
        payloads = [
            (index, spec, None)
            for index, spec in enumerate(_specs(AutoBackend.LOCKSTEP_MIN_ITEMS - 1))
        ]
        assert backend.lockstep_candidate(_execute_payload, payloads) is None

    def test_heterogeneous_durations_not_a_candidate(self):
        backend = AutoBackend()
        specs = _specs(4, duration=3.0) + _specs(4, duration=5.0)
        payloads = [(index, spec, None) for index, spec in enumerate(specs)]
        assert backend.lockstep_candidate(_execute_payload, payloads) is None

    def test_auto_result_matches_serial(self):
        specs = _specs(AutoBackend.LOCKSTEP_MIN_ITEMS)
        serial = Executor.for_workers(1).run(specs)
        auto = Executor.for_workers("auto").run(specs)
        assert serial.report.to_json() == auto.report.to_json()
        assert _log_pickles(serial) == _log_pickles(auto)


class TestForWorkersArg:
    def test_lockstep_string_selects_backend(self):
        executor = Executor.for_workers("lockstep")
        assert isinstance(executor.backend, LockstepBackend)

    def test_unknown_string_still_rejected(self):
        with pytest.raises(ConfigurationError):
            Executor.for_workers("warp-speed")
