"""ResultStore: atomic writes, integrity-checked reads, quarantine, gc."""

import gzip
import json

import pytest

from repro.store import CorruptEntryError, ResultStore
from repro.store.format import SCHEMA_VERSION

KEY = "ab" + "0" * 62
OTHER_KEY = "cd" + "1" * 62
PAYLOAD = {"flow_id": "t/0", "attempts": 1, "failures": [], "result": {"x": 1.5}}


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestRoundTrip:
    def test_put_load(self, store):
        store.put(KEY, PAYLOAD)
        assert store.load(KEY) == PAYLOAD

    def test_absent_is_none(self, store):
        assert store.load(KEY) is None
        assert store.get(KEY) == (None, False)

    def test_sharded_layout(self, store):
        path = store.put(KEY, PAYLOAD)
        assert path == store.root / KEY[:2] / f"{KEY}.json.gz"
        assert path.exists()

    def test_writes_are_deterministic_bytes(self, store, tmp_path):
        first = store.put(KEY, PAYLOAD).read_bytes()
        second = ResultStore(tmp_path / "other").put(KEY, PAYLOAD).read_bytes()
        assert first == second

    def test_no_tmp_files_left_behind(self, store):
        store.put(KEY, PAYLOAD)
        leftovers = [
            p for p in store.root.rglob("*") if p.is_file() and p.suffix == ".tmp"
        ]
        assert leftovers == []

    def test_overwrite_wins(self, store):
        store.put(KEY, PAYLOAD)
        store.put(KEY, {**PAYLOAD, "attempts": 2})
        assert store.load(KEY)["attempts"] == 2


class TestCorruption:
    def test_truncated_gzip_is_corrupt(self, store):
        path = store.put(KEY, PAYLOAD)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(CorruptEntryError):
            store.load(KEY)

    def test_garbage_bytes_are_corrupt(self, store):
        path = store.put(KEY, PAYLOAD)
        path.write_bytes(b"not a gzip stream")
        with pytest.raises(CorruptEntryError):
            store.load(KEY)

    def test_digest_mismatch_is_corrupt(self, store):
        path = store.put(KEY, PAYLOAD)
        head, body = gzip.decompress(path.read_bytes()).split(b"\n", 1)
        tampered = body.replace(b'"attempts":1', b'"attempts":99')
        assert tampered != body  # tamper without re-digesting
        path.write_bytes(gzip.compress(head + b"\n" + tampered))
        with pytest.raises(CorruptEntryError, match="digest"):
            store.load(KEY)

    def test_missing_header_line_is_corrupt(self, store):
        path = store.put(KEY, PAYLOAD)
        path.write_bytes(gzip.compress(b'{"key": "%s"}' % KEY.encode()))
        with pytest.raises(CorruptEntryError, match="header"):
            store.load(KEY)

    def test_key_filename_mismatch_is_corrupt(self, store):
        path = store.put(KEY, PAYLOAD)
        target = store.path_for(OTHER_KEY)
        target.parent.mkdir(parents=True, exist_ok=True)
        path.rename(target)
        with pytest.raises(CorruptEntryError, match="key"):
            store.load(OTHER_KEY)

    def test_get_quarantines_and_reports(self, store):
        path = store.put(KEY, PAYLOAD)
        path.write_bytes(b"garbage")
        payload, was_corrupt = store.get(KEY)
        assert payload is None and was_corrupt
        assert not path.exists()
        assert (store.root / "quarantine" / path.name).exists()
        # next read of the same key is a clean miss
        assert store.get(KEY) == (None, False)

    def test_verify_reports_without_moving(self, store):
        good_path = store.put(KEY, PAYLOAD)
        bad_path = store.put(OTHER_KEY, PAYLOAD)
        bad_path.write_bytes(b"garbage")
        checked, corrupt = store.verify()
        assert checked == 2
        assert corrupt == [OTHER_KEY]
        assert good_path.exists() and bad_path.exists()


class TestSchemaAndGc:
    def _write_stale(self, store, key):
        path = store.put(key, PAYLOAD)
        head, body = gzip.decompress(path.read_bytes()).split(b"\n", 1)
        header = json.loads(head)
        header["schema"] = SCHEMA_VERSION - 1
        path.write_bytes(
            gzip.compress(json.dumps(header).encode() + b"\n" + body)
        )

    def test_stale_schema_reads_as_miss(self, store):
        self._write_stale(store, KEY)
        assert store.load(KEY) is None
        assert store.get(KEY) == (None, False)

    def test_gc_drops_stale_keeps_current(self, store):
        store.put(KEY, PAYLOAD)
        self._write_stale(store, OTHER_KEY)
        kept, removed = store.gc()
        assert (kept, removed) == (1, 1)
        assert store.load(KEY) == PAYLOAD
        assert not store.path_for(OTHER_KEY).exists()

    def test_gc_drops_unreadable(self, store):
        path = store.put(KEY, PAYLOAD)
        path.write_bytes(b"garbage")
        kept, removed = store.gc()
        assert (kept, removed) == (0, 1)

    def test_stats(self, store):
        store.put(KEY, PAYLOAD)
        self._write_stale(store, OTHER_KEY)
        bad = store.put("ef" + "2" * 62, PAYLOAD)
        bad.write_bytes(b"garbage")
        store.get("ef" + "2" * 62)  # quarantine it
        stats = store.stats()
        assert stats.entries == 2
        assert stats.stale_entries == 1
        assert stats.quarantined == 1
        assert stats.total_bytes > 0
        assert stats.to_dict()["schema_version"] == SCHEMA_VERSION
        assert "2 entries" in stats.summary()
