"""Store behaviour under concurrency and failure.

Two campaigns sharing one store directory must race benignly (atomic
same-key writes, last identical write wins), a truncated entry read
mid-campaign must degrade to quarantine-and-recompute rather than an
exception, and the circuit breaker must fail the store *open* — an
unusable disk degrades a campaign to uncached execution, never aborts
it.
"""

import errno
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

import pytest

from repro.exec.executor import Executor, _execute_payload
from repro.exec.spec import FlowSpec
from repro.hsr import CHINA_MOBILE, hsr_scenario
from repro.robustness.campaign import RetryPolicy
from repro.store import CachedBackend, ResultStore, StoreCircuitBreaker, flow_key
from repro.store.scope import store_scope


def _specs(n):
    return [
        FlowSpec(
            scenario=hsr_scenario(CHINA_MOBILE), duration=3.0, seed=70 + i,
            flow_id=f"c/{i}",
        )
        for i in range(n)
    ]


def _payloads(n):
    return [(i, spec, RetryPolicy()) for i, spec in enumerate(_specs(n))]


def _run_store_campaign(store_root):
    """One full store-backed campaign; module-level so spawn can pickle it."""
    with store_scope(store_root):
        result = Executor().run(_specs(3))
    return result.report.to_json()


def _hammer_same_key(store_root, rounds):
    """Write the same entries over and over (the same-key race arm)."""
    store = ResultStore(store_root)
    spec = _specs(1)[0]
    key = flow_key(spec)
    for _ in range(rounds):
        store.put(key, {"flow_id": spec.flow_id, "round_trip": True})
    return key


class TestConcurrentCampaigns:
    def test_two_processes_share_one_store(self, tmp_path):
        """Two simultaneous campaigns over the same specs and store:
        both complete, reports match, and the store stays sound."""
        root = str(tmp_path / "shared")
        with ProcessPoolExecutor(
            max_workers=2, mp_context=get_context("spawn")
        ) as pool:
            reports = list(pool.map(_run_store_campaign, [root, root]))
        assert reports[0] == reports[1]
        store = ResultStore(root)
        assert store.verify() == (3, [])
        # a third, warm run serves everything from the store
        with store_scope(root):
            warm = Executor().run(_specs(3))
        assert warm.report.cache_hits == 3
        assert warm.report.to_json() == reports[0]

    def test_same_key_writers_race_benignly(self, tmp_path):
        root = str(tmp_path / "race")
        with ProcessPoolExecutor(
            max_workers=2, mp_context=get_context("spawn")
        ) as pool:
            keys = list(pool.map(_hammer_same_key, [root, root], [50, 50]))
        assert keys[0] == keys[1]
        store = ResultStore(root)
        assert store.verify() == (1, [])  # never a torn entry
        payload = store.load(keys[0])
        assert payload == {"flow_id": "c/0", "round_trip": True}
        # no leaked temp files from either writer
        assert not list(store.root.rglob("*.tmp"))

    def test_threaded_same_key_writers_race_benignly(self, tmp_path):
        """Threads sharing one ResultStore object (the HTTP store
        server's reality) must not interleave on the staging file: the
        tmp name is unique per pid *and* thread *and* write, so the
        loser's rename is a silent no-op, never a torn entry."""
        import threading

        store = ResultStore(tmp_path / "threads")
        spec = _specs(1)[0]
        key = flow_key(spec)
        errors = []

        def hammer():
            try:
                for _ in range(40):
                    store.put(key, {"flow_id": spec.flow_id, "round_trip": True})
            except Exception as error:  # pragma: no cover - the failure arm
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.verify() == (1, [])
        assert store.load(key) == {"flow_id": spec.flow_id, "round_trip": True}
        assert not list(store.root.rglob("*.tmp"))

    def test_remote_clients_race_benignly_through_one_server(self, tmp_path):
        """Concurrent RemoteStore clients PUTting the same key drive
        the threaded server's shared ResultStore from many handler
        threads at once — the end-to-end version of the race above."""
        import threading

        from repro.store import RemoteStore, StoreServer

        spec = _specs(1)[0]
        key = flow_key(spec)
        errors = []
        with StoreServer(tmp_path / "remote") as server:

            def hammer():
                try:
                    client = RemoteStore(server.url)
                    for _ in range(15):
                        client.put(key, {"flow_id": spec.flow_id})
                except Exception as error:  # pragma: no cover - failure arm
                    errors.append(error)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            store = server.store
        assert errors == []
        assert store.verify() == (1, [])
        assert store.load(key) == {"flow_id": spec.flow_id}
        assert not list(store.root.rglob("*.tmp"))


class TestTruncatedEntryMidCampaign:
    def test_truncated_read_degrades_to_recompute(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        backend = CachedBackend(store)
        payloads = _payloads(3)
        backend.map(_execute_payload, payloads)
        key = flow_key(payloads[1][1])
        path = store.path_for(key)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])  # half a gzip frame
        outcomes = backend.map(_execute_payload, payloads)  # must not raise
        assert [o.cache_state for o in outcomes] == ["hit", "corrupt", "hit"]
        assert all(o.ok for o in outcomes)
        assert backend.last_stats["corrupt"] == 1
        # the rotten bytes were quarantined for post-mortem, and the
        # recomputed entry reads cleanly from now on
        assert store.stats().quarantined == 1
        assert store.verify() == (3, [])
        warm = backend.map(_execute_payload, payloads)
        assert [o.cache_state for o in warm] == ["hit"] * 3


class _FailingStore:
    """A store whose configured operations raise OSError."""

    def __init__(self, fail=("get", "put", "quarantine")):
        self.fail = set(fail)
        self.calls = []

    def _maybe_fail(self, op):
        self.calls.append(op)
        if op in self.fail:
            raise OSError(errno.ENOSPC, "no space left on device")

    def get(self, key):
        self._maybe_fail("get")
        return None, False

    def put(self, key, payload):
        self._maybe_fail("put")

    def quarantine(self, key):
        self._maybe_fail("quarantine")


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self, capsys):
        breaker = StoreCircuitBreaker(_FailingStore(), threshold=3)
        for _ in range(3):
            assert breaker.get("k" * 64) == (None, False, True)
        assert breaker.open
        assert breaker.errors == 3
        err = capsys.readouterr().err
        assert "circuit breaker OPEN" in err
        assert "UNCACHED" in err
        assert err.count("circuit breaker OPEN") == 1  # one loud note

    def test_open_circuit_short_circuits(self):
        store = _FailingStore()
        breaker = StoreCircuitBreaker(store, threshold=1)
        breaker.get("k" * 64)
        assert breaker.open
        calls_when_opened = len(store.calls)
        assert breaker.get("k" * 64) == (None, False, True)
        assert breaker.put("k" * 64, {}) is False
        assert breaker.quarantine("k" * 64) is False
        assert len(store.calls) == calls_when_opened  # disk never touched

    def test_success_resets_the_consecutive_count(self):
        store = _FailingStore(fail=("put",))
        breaker = StoreCircuitBreaker(store, threshold=2)
        assert breaker.put("k" * 64, {}) is False  # 1 consecutive
        assert breaker.get("k" * 64) == (None, False, False)  # blip absorbed
        assert breaker.put("k" * 64, {}) is False  # 1 again, not 2
        assert not breaker.open
        assert breaker.errors == 2  # total is monotone regardless

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            StoreCircuitBreaker(_FailingStore(), threshold=0)

    def test_campaign_survives_a_dead_store(self, tmp_path, monkeypatch):
        """End to end: every store op fails, the campaign still completes
        with every flow computed fresh and counted as a store error."""
        import repro.store.backend as backend_module

        real_store = ResultStore(tmp_path / "store")

        def exploding(self, key):
            raise OSError(errno.EIO, "bad disk")

        monkeypatch.setattr(ResultStore, "get", exploding)
        monkeypatch.setattr(
            ResultStore, "put", lambda self, key, payload: exploding(self, key)
        )
        backend = CachedBackend(real_store)
        outcomes = backend.map(_execute_payload, _payloads(3))
        assert all(o.ok for o in outcomes)
        assert [o.cache_state for o in outcomes] == ["error"] * 3
        assert backend.last_stats["errors"] == 3
