"""CachedBackend: partition into hits/misses, store fresh, stay ordered."""

import pickle

import pytest

from repro.exec.executor import Executor, SerialBackend, _execute_payload
from repro.exec.spec import FlowSpec
from repro.hsr import CHINA_MOBILE, hsr_scenario
from repro.robustness.campaign import RetryPolicy
from repro.simulator.connection import ConnectionConfig
from repro.store import CachedBackend, ResultStore, flow_key
from repro.traces.events import FlowMetadata


class CountingBackend:
    """SerialBackend that records how many payloads it actually ran."""

    name = "counting"

    def __init__(self):
        self.calls = []

    def map(self, fn, items, progress=None):
        self.calls.append(len(list(items)))
        return SerialBackend().map(fn, items, progress)

    @property
    def total(self):
        return sum(self.calls)


def _payloads(n, telemetry=False, metadata=False):
    payloads = []
    for i in range(n):
        md = None
        if metadata:
            md = FlowMetadata(
                flow_id=f"b/{i}", provider="CM", technology="LTE",
                scenario="hsr", capture_month="2015-01",
                phone_model="Note 3", duration=3.0, seed=50 + i,
            )
        spec = FlowSpec(
            scenario=hsr_scenario(CHINA_MOBILE), duration=3.0, seed=50 + i,
            flow_id=f"b/{i}", telemetry=telemetry, metadata=md,
        )
        payloads.append((i, spec, RetryPolicy()))
    return payloads


class TestPartition:
    def test_cold_then_warm(self, tmp_path):
        inner = CountingBackend()
        backend = CachedBackend(tmp_path / "store", inner)
        payloads = _payloads(3)
        cold = backend.map(_execute_payload, payloads)
        assert inner.total == 3
        assert backend.last_stats == {
            "items": 3, "hits": 0, "misses": 3, "corrupt": 0, "uncacheable": 0,
            "errors": 0,
        }
        warm = backend.map(_execute_payload, payloads)
        assert inner.total == 3  # nothing new simulated
        assert backend.last_stats["hits"] == 3
        assert [o.cache_state for o in cold] == ["miss"] * 3
        assert [o.cache_state for o in warm] == ["hit"] * 3
        for fresh, cached in zip(cold, warm):
            assert pickle.dumps(fresh.result.log) == pickle.dumps(cached.result.log)
            assert fresh.result.duration == cached.result.duration

    def test_partial_hit_merges_in_order(self, tmp_path):
        inner = CountingBackend()
        backend = CachedBackend(tmp_path / "store", inner)
        payloads = _payloads(4)
        backend.map(_execute_payload, payloads[1:3])  # warm the middle two
        outcomes = backend.map(_execute_payload, payloads)
        assert inner.calls == [2, 2]
        assert [o.cache_state for o in outcomes] == ["miss", "hit", "hit", "miss"]
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert [o.spec.flow_id for o in outcomes] == [f"b/{i}" for i in range(4)]

    def test_refresh_recomputes_but_rewrites(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        inner = CountingBackend()
        CachedBackend(store, inner).map(_execute_payload, _payloads(2))
        refresher = CachedBackend(store, inner, refresh=True)
        outcomes = refresher.map(_execute_payload, _payloads(2))
        assert inner.total == 4  # all recomputed
        assert refresher.last_stats["hits"] == 0
        assert [o.cache_state for o in outcomes] == ["miss", "miss"]
        assert store.verify() == (2, [])  # entries still present and sound

    def test_uncacheable_runs_fresh_every_time(self, tmp_path):
        inner = CountingBackend()
        backend = CachedBackend(tmp_path / "store", inner)
        hooked = hsr_scenario(CHINA_MOBILE).with_channel_hook(
            lambda built, seed: built
        )
        payloads = [(0, FlowSpec(scenario=hooked, duration=3.0, seed=5), RetryPolicy())]
        backend.map(_execute_payload, payloads)
        backend.map(_execute_payload, payloads)
        assert inner.total == 2
        assert backend.last_stats["uncacheable"] == 1
        assert backend.store.stats().entries == 0

    def test_corrupt_entry_recomputed_and_counted(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        inner = CountingBackend()
        backend = CachedBackend(store, inner)
        payloads = _payloads(1)
        backend.map(_execute_payload, payloads)
        key = flow_key(payloads[0][1])
        store.path_for(key).write_bytes(b"garbage")
        outcomes = backend.map(_execute_payload, payloads)
        assert inner.total == 2
        assert backend.last_stats["corrupt"] == 1
        assert outcomes[0].cache_state == "corrupt"
        # the damaged entry went to quarantine and was re-stored cleanly
        assert (store.root / "quarantine").is_dir()
        assert store.verify() == (1, [])

    def test_quarantined_outcomes_not_stored(self, tmp_path):
        backend = CachedBackend(tmp_path / "store")
        spec = FlowSpec(
            config=ConnectionConfig(duration=2.0), seed=1, cc="missing-variant"
        )
        outcomes = backend.map(
            _execute_payload, [(0, spec, RetryPolicy(max_retries=0))]
        )
        assert not outcomes[0].ok
        assert backend.store.stats().entries == 0

    def test_hits_restore_traces(self, tmp_path):
        backend = CachedBackend(tmp_path / "store")
        payloads = _payloads(2, metadata=True)
        cold = backend.map(_execute_payload, payloads)
        warm = backend.map(_execute_payload, payloads)
        for fresh, cached in zip(cold, warm):
            assert cached.trace is not None
            assert pickle.dumps(fresh.trace) == pickle.dumps(cached.trace)

    def test_telemetry_counters_tell_the_truth(self, tmp_path):
        backend = CachedBackend(tmp_path / "store")
        payloads = _payloads(1, telemetry=True)
        (cold,) = backend.map(_execute_payload, payloads)
        (warm,) = backend.map(_execute_payload, payloads)
        assert cold.result.telemetry.cache_miss == 1
        assert cold.result.telemetry.cache_hit == 0
        assert warm.result.telemetry.cache_hit == 1
        assert warm.result.telemetry.cache_miss == 0
        # the simulation counters themselves are identical
        strip = lambda t: {
            k: v for k, v in t.as_dict().items() if not k.startswith("cache_")
        }
        assert strip(cold.result.telemetry) == strip(warm.result.telemetry)


class TestExecutorIntegration:
    def test_report_counts_hits_and_misses(self, tmp_path):
        from repro.store.scope import store_scope

        specs = [payload[1] for payload in _payloads(3)]
        with store_scope(tmp_path / "store"):
            cold = Executor().run(specs)
            warm = Executor().run(specs)
        assert (cold.report.cache_hits, cold.report.cache_misses) == (0, 3)
        assert (warm.report.cache_hits, warm.report.cache_misses) == (3, 0)
        assert warm.report.cache_summary() == "3 cached, 0 fresh"
        # cache accounting never leaks into the serialised report
        assert cold.report.to_json() == warm.report.to_json()
        assert "cache" not in cold.report.to_json()

    def test_explicit_cached_backend_not_rewrapped(self, tmp_path):
        from repro.store.scope import store_scope

        backend = CachedBackend(tmp_path / "store")
        executor = Executor(backend=backend)
        with store_scope(tmp_path / "other"):
            executor.run([payload[1] for payload in _payloads(1)])
        assert backend.last_stats is not None  # the explicit wrap ran
        assert ResultStore(tmp_path / "other").stats().entries == 0

    def test_no_store_means_no_cache_state(self, tmp_path):
        result = Executor().run([payload[1] for payload in _payloads(1)])
        assert result.outcomes[0].cache_state is None
        assert result.report.cache_summary() == ""
