"""Content hashing: stable, discriminating, and honest about opacity."""

import pytest

from repro.exec.spec import FlowSpec
from repro.hsr import CHINA_MOBILE, CHINA_TELECOM, hsr_scenario
from repro.robustness.faults import FaultPlan, with_faults
from repro.simulator.connection import ConnectionConfig
from repro.store import UnhashableSpecError, canonical_json, flow_key
from repro.store import keys as keys_module


def _spec(**overrides) -> FlowSpec:
    base = dict(scenario=hsr_scenario(CHINA_MOBILE), duration=10.0, seed=7)
    base.update(overrides)
    return FlowSpec(**base)


class TestFlowKey:
    def test_stable_across_equal_specs(self):
        assert flow_key(_spec()) == flow_key(_spec())

    def test_is_hex_sha256(self):
        key = flow_key(_spec())
        assert len(key) == 64
        int(key, 16)  # raises if not hex

    @pytest.mark.parametrize(
        "changes",
        [
            {"seed": 8},
            {"duration": 11.0},
            {"cc": "newreno"},
            {"channel_seed": 99},
            {"scenario": hsr_scenario(CHINA_TELECOM)},
            {"flow_id": "other"},
        ],
    )
    def test_discriminates_spec_fields(self, changes):
        assert flow_key(_spec()) != flow_key(_spec(**changes))

    def test_telemetry_flag_excluded(self):
        # Collecting counters never changes simulated bytes, so it must
        # not change the cache identity either.
        assert flow_key(_spec()) == flow_key(_spec(telemetry=True))

    def test_explicit_config_spec_hashable(self):
        spec = FlowSpec(config=ConnectionConfig(duration=5.0), seed=3)
        assert flow_key(spec) == flow_key(
            FlowSpec(config=ConnectionConfig(duration=5.0), seed=3)
        )

    def test_fault_plan_scenario_hashable(self):
        # with_faults rides FaultPlan.apply on Scenario.channel_hook as
        # a bound method — content-addressable through its instance.
        plan = FaultPlan.aggressive(0.3)
        faulted = with_faults(hsr_scenario(CHINA_MOBILE), plan)
        spec = _spec(scenario=faulted)
        assert flow_key(spec) == flow_key(_spec(scenario=with_faults(
            hsr_scenario(CHINA_MOBILE), FaultPlan.aggressive(0.3))))
        assert flow_key(spec) != flow_key(_spec())

    def test_opaque_hook_raises(self):
        hooked = hsr_scenario(CHINA_MOBILE).with_channel_hook(
            lambda built, seed: built
        )
        with pytest.raises(UnhashableSpecError) as excinfo:
            flow_key(_spec(scenario=hooked))
        assert "channel_hook" in str(excinfo.value)

    def test_salted_with_engine_schema_version(self, monkeypatch):
        before = flow_key(_spec())
        monkeypatch.setattr(keys_module, "ENGINE_SCHEMA_VERSION", 999)
        assert flow_key(_spec()) != before

    def test_salted_with_cc_registry_version(self, monkeypatch):
        import repro.cc as cc_package

        before = flow_key(_spec())
        monkeypatch.setattr(cc_package, "CC_REGISTRY_VERSION", 999)
        assert flow_key(_spec()) != before


class TestParentKey:
    """Satellite regression: retries resolve to the original flow's key."""

    def test_for_attempt_records_parent(self):
        spec = _spec()
        retry = spec.for_attempt(12345)
        assert retry.parent_key == flow_key(spec)
        assert retry.seed != spec.seed

    def test_retry_key_equals_original_key(self):
        spec = _spec()
        assert flow_key(spec.for_attempt(12345)) == flow_key(spec)

    def test_chained_retries_keep_original_key(self):
        spec = _spec()
        second = spec.for_attempt(1).for_attempt(2)
        assert second.parent_key == flow_key(spec)
        assert flow_key(second) == flow_key(spec)

    def test_parent_key_not_part_of_hash_material(self):
        # A spec that merely *carries* a parent key hashes as that key;
        # the field never feeds the sha256 material itself.
        spec = _spec()
        tagged = spec.with_(parent_key="ab" * 32)
        assert flow_key(tagged) == "ab" * 32


class TestCanonicalJson:
    def test_dict_ordering_is_canonical(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_floats_round_trip_via_repr(self):
        assert '"__float__":"0.1"' in canonical_json(0.1)
        assert canonical_json(0.1) != canonical_json(0.1000000000000001)

    def test_opaque_callable_named_in_error(self):
        with pytest.raises(UnhashableSpecError) as excinfo:
            canonical_json({"hook": lambda: None})
        assert "hook" in str(excinfo.value)
