"""The HTTP store transport: server, client, and failure degradation.

The transport ships the store's verbatim on-disk entry bytes, so the
sha256 digest inside each entry protects the payload end to end; a
dead or lying server must degrade exactly like a dead or lying disk —
OSError into the circuit breaker, quarantine on corruption, never an
aborted campaign.
"""

import http.client
import json

import pytest

from repro.robustness.campaign import RetryPolicy
from repro.store import (
    CorruptEntryError,
    RemoteStore,
    ResultStore,
    StoreCircuitBreaker,
    StoreServer,
    open_store,
)
from repro.store.disk import encode_entry

KEY = "ab" * 32
OTHER = "cd" * 32
PAYLOAD = {"flow_id": "remote/0", "throughput": 12.5}


@pytest.fixture()
def server(tmp_path):
    with StoreServer(tmp_path / "store") as srv:
        yield srv


def _fast_retries():
    return RetryPolicy(max_retries=1, backoff_base_s=0.01)


class TestRoundTrip:
    def test_put_load_get_round_trip(self, server):
        client = RemoteStore(server.url)
        location = client.put(KEY, PAYLOAD)
        assert KEY in location
        assert client.load(KEY) == PAYLOAD
        assert client.get(KEY) == (PAYLOAD, False)
        # the entry landed as ordinary on-disk bytes: a local store
        # over the same directory reads it back identically
        assert server.store.load(KEY) == PAYLOAD

    def test_absent_key_is_a_clean_miss(self, server):
        client = RemoteStore(server.url)
        assert client.load(OTHER) is None
        assert client.get(OTHER) == (None, False)
        assert client.quarantine(OTHER) is None

    def test_stats_cross_the_wire(self, server):
        client = RemoteStore(server.url)
        client.put(KEY, PAYLOAD)
        stats = client.stats()
        assert stats.entries == 1
        assert stats.total_bytes > 0
        assert server.request_count >= 2  # the put + the stats call

    def test_healthz(self, server):
        assert RemoteStore(server.url).healthy() is True

    def test_connection_is_reused_across_requests(self, server):
        client = RemoteStore(server.url)
        client.put(KEY, PAYLOAD)
        first = client._conn
        client.load(KEY)
        assert client._conn is first


class TestIntegrity:
    def test_server_side_corruption_quarantines_on_get(self, server):
        client = RemoteStore(server.url)
        client.put(KEY, PAYLOAD)
        path = server.store.path_for(KEY)
        path.write_bytes(path.read_bytes()[:10])  # torn gzip frame
        with pytest.raises(CorruptEntryError):
            client.load(KEY)
        assert client.get(KEY) == (None, True)
        # quarantined server-side: gone from the main tree, kept aside
        assert server.store.read_bytes(KEY) is None
        assert server.store.stats().quarantined == 1

    def test_server_rejects_a_lying_upload(self, server):
        # hand-roll a PUT whose bytes are a valid entry for a
        # *different* key: the server must refuse to land it
        raw = encode_entry(OTHER, PAYLOAD)
        conn = http.client.HTTPConnection(
            *server.url.removeprefix("http://").split(":"), timeout=5.0
        )
        try:
            conn.request("PUT", f"/entry/{KEY}", body=raw)
            response = conn.getresponse()
            body = response.read()
        finally:
            conn.close()
        assert response.status == 400
        assert b"bound to key" in body or b"error" in body
        assert server.store.read_bytes(KEY) is None

    def test_server_rejects_garbage_keys(self, server):
        conn = http.client.HTTPConnection(
            *server.url.removeprefix("http://").split(":"), timeout=5.0
        )
        try:
            conn.request("GET", "/entry/not-a-key")
            response = conn.getresponse()
            response.read()
            assert response.status == 400
            conn.request("GET", "/nope")
            response = conn.getresponse()
            assert json.loads(response.read()) == {"error": "unknown path"}
            assert response.status == 404
        finally:
            conn.close()


class TestFailureDegradation:
    def test_dead_server_raises_oserror(self, server):
        url = server.url
        server.close()
        client = RemoteStore(url, retry_policy=_fast_retries())
        with pytest.raises(OSError):
            client.load(KEY)
        with pytest.raises(OSError):
            client.put(KEY, PAYLOAD)
        assert client.healthy() is False

    def test_breaker_degrades_a_dead_remote_store(self, server, capsys):
        url = server.url
        server.close()
        breaker = StoreCircuitBreaker(
            RemoteStore(url, retry_policy=_fast_retries()), threshold=3
        )
        for _ in range(3):
            assert breaker.get(KEY) == (None, False, True)
        assert breaker.open
        assert "circuit breaker OPEN" in capsys.readouterr().err

    def test_client_survives_a_server_restart_blip(self, tmp_path):
        # same directory, two server lifetimes: the client's kept
        # connection dies with the first server and the retry path
        # re-establishes it against the second
        root = tmp_path / "store"
        with StoreServer(root) as first:
            port = int(first.url.rsplit(":", 1)[1])
            client = RemoteStore(first.url, retry_policy=_fast_retries())
            client.put(KEY, PAYLOAD)
        with StoreServer(root, port=port):
            assert client.load(KEY) == PAYLOAD


class TestOpenStore:
    def test_url_opens_a_remote_store(self, server):
        store = open_store(server.url)
        assert isinstance(store, RemoteStore)

    def test_path_opens_a_result_store(self, tmp_path):
        store = open_store(str(tmp_path / "s"))
        assert isinstance(store, ResultStore)

    def test_open_stores_pass_through(self, tmp_path, server):
        local = ResultStore(tmp_path / "s")
        remote = RemoteStore(server.url)
        assert open_store(local) is local
        assert open_store(remote) is remote

    def test_https_is_refused(self):
        with pytest.raises(ValueError):
            open_store("https://example.test:8080")

    def test_junk_is_refused(self):
        with pytest.raises(TypeError):
            open_store(42)
        with pytest.raises(ValueError):
            RemoteStore("ftp://nope")


class TestPickling:
    def test_client_crosses_pickle_without_its_socket(self, server):
        import pickle

        client = RemoteStore(server.url)
        client.put(KEY, PAYLOAD)
        assert client._conn is not None
        clone = pickle.loads(pickle.dumps(client))
        assert clone._conn is None
        assert clone.load(KEY) == PAYLOAD
