"""``python -m repro.store`` maintenance commands."""

import gzip
import json

import pytest

from repro.store import ResultStore
from repro.store.cli import main
from repro.store.format import SCHEMA_VERSION

KEY = "ab" + "0" * 62
OTHER_KEY = "cd" + "1" * 62
PAYLOAD = {"flow_id": "t/0", "attempts": 1, "failures": [], "result": {}}


@pytest.fixture
def store_dir(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.put(KEY, PAYLOAD)
    return str(store.root)


class TestStats:
    def test_human(self, store_dir, capsys):
        assert main(["stats", store_dir]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out

    def test_json(self, store_dir, capsys):
        assert main(["stats", store_dir, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["entries"] == 1
        assert data["schema_version"] == SCHEMA_VERSION


class TestVerify:
    def test_clean_store_exits_zero(self, store_dir, capsys):
        assert main(["verify", store_dir]) == 0
        assert "0 corrupt" in capsys.readouterr().out

    def test_corrupt_store_exits_one(self, store_dir, capsys):
        store = ResultStore(store_dir)
        store.path_for(KEY).write_bytes(b"garbage")
        assert main(["verify", store_dir]) == 1
        captured = capsys.readouterr()
        assert "1 corrupt" in captured.out
        assert KEY in captured.err
        assert store.path_for(KEY).exists()  # verify alone never moves

    def test_quarantine_flag_moves(self, store_dir):
        store = ResultStore(store_dir)
        store.path_for(KEY).write_bytes(b"garbage")
        assert main(["verify", store_dir, "--quarantine"]) == 1
        assert not store.path_for(KEY).exists()
        assert store.stats().quarantined == 1


class TestGc:
    def _stale(self, store_dir):
        store = ResultStore(store_dir)
        path = store.put(OTHER_KEY, PAYLOAD)
        head, body = gzip.decompress(path.read_bytes()).split(b"\n", 1)
        header = json.loads(head)
        header["schema"] = SCHEMA_VERSION - 1
        path.write_bytes(
            gzip.compress(json.dumps(header).encode() + b"\n" + body)
        )
        return store

    def test_gc_removes_stale(self, store_dir, capsys):
        store = self._stale(store_dir)
        assert main(["gc", store_dir]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert store.stats().entries == 1

    def test_dry_run_removes_nothing(self, store_dir, capsys):
        store = self._stale(store_dir)
        assert main(["gc", store_dir, "--dry-run"]) == 0
        assert "would remove 1" in capsys.readouterr().out
        assert store.stats().entries == 2


def test_module_entry_point():
    import subprocess
    import sys

    completed = subprocess.run(
        [sys.executable, "-m", "repro.store", "--help"],
        capture_output=True, text=True,
    )
    assert completed.returncode == 0
    assert "stats" in completed.stdout
