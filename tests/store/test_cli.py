"""``python -m repro.store`` maintenance commands."""

import gzip
import json

import pytest

from repro.store import ResultStore
from repro.store.cli import main
from repro.store.format import SCHEMA_VERSION

KEY = "ab" + "0" * 62
OTHER_KEY = "cd" + "1" * 62
PAYLOAD = {"flow_id": "t/0", "attempts": 1, "failures": [], "result": {}}


@pytest.fixture
def store_dir(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.put(KEY, PAYLOAD)
    return str(store.root)


class TestStats:
    def test_human(self, store_dir, capsys):
        assert main(["stats", store_dir]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out

    def test_json(self, store_dir, capsys):
        assert main(["stats", store_dir, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["entries"] == 1
        assert data["schema_version"] == SCHEMA_VERSION


class TestVerify:
    def test_clean_store_exits_zero(self, store_dir, capsys):
        assert main(["verify", store_dir]) == 0
        assert "0 corrupt" in capsys.readouterr().out

    def test_corrupt_store_exits_one(self, store_dir, capsys):
        store = ResultStore(store_dir)
        store.path_for(KEY).write_bytes(b"garbage")
        assert main(["verify", store_dir]) == 1
        captured = capsys.readouterr()
        assert "1 corrupt" in captured.out
        assert KEY in captured.err
        assert store.path_for(KEY).exists()  # verify alone never moves

    def test_quarantine_flag_moves(self, store_dir):
        store = ResultStore(store_dir)
        store.path_for(KEY).write_bytes(b"garbage")
        assert main(["verify", store_dir, "--quarantine"]) == 1
        assert not store.path_for(KEY).exists()
        assert store.stats().quarantined == 1

    def test_json_reports_corruption(self, store_dir, capsys):
        store = ResultStore(store_dir)
        store.path_for(KEY).write_bytes(b"garbage")
        assert main(["verify", store_dir, "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["checked"] == 1
        assert data["corrupt"] == 1
        assert data["corrupt_keys"] == [KEY]
        assert data["quarantined"] == []  # inspect only, nothing moved
        assert store.path_for(KEY).exists()

    def test_json_with_quarantine_lists_the_moves(self, store_dir, capsys):
        store = ResultStore(store_dir)
        store.path_for(KEY).write_bytes(b"garbage")
        assert main(["verify", store_dir, "--quarantine", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["quarantined"] == [KEY]
        assert not store.path_for(KEY).exists()

    def test_repair_json_exits_zero(self, store_dir, capsys):
        store = ResultStore(store_dir)
        store.path_for(KEY).write_bytes(b"garbage")
        assert main(["verify", store_dir, "--repair", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data == {
            "checked": 1, "corrupt": 1, "quarantined": [KEY], "repaired": True,
        }


class TestGc:
    def _stale(self, store_dir):
        store = ResultStore(store_dir)
        path = store.put(OTHER_KEY, PAYLOAD)
        head, body = gzip.decompress(path.read_bytes()).split(b"\n", 1)
        header = json.loads(head)
        header["schema"] = SCHEMA_VERSION - 1
        path.write_bytes(
            gzip.compress(json.dumps(header).encode() + b"\n" + body)
        )
        return store

    def test_gc_removes_stale(self, store_dir, capsys):
        store = self._stale(store_dir)
        assert main(["gc", store_dir]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert store.stats().entries == 1

    def test_dry_run_removes_nothing(self, store_dir, capsys):
        store = self._stale(store_dir)
        assert main(["gc", store_dir, "--dry-run"]) == 0
        assert "would remove 1" in capsys.readouterr().out
        assert store.stats().entries == 2

    def test_json(self, store_dir, capsys):
        self._stale(store_dir)
        assert main(["gc", store_dir, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data == {
            "dry_run": False, "kept": 1, "removed": 1,
            "schema_version": SCHEMA_VERSION,
        }

    def test_dry_run_json(self, store_dir, capsys):
        store = self._stale(store_dir)
        assert main(["gc", store_dir, "--dry-run", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["dry_run"] is True
        assert data["would_remove"] == 1
        assert store.stats().entries == 2


class TestServe:
    def test_serve_prints_url_and_answers(self, store_dir):
        import http.client
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(os.getcwd(), "src"),
                        env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.store", "serve", store_dir],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            url = proc.stdout.readline().strip()
            assert url.startswith("http://127.0.0.1:")
            host, port = url.removeprefix("http://").split(":")
            conn = http.client.HTTPConnection(host, int(port), timeout=5.0)
            try:
                conn.request("GET", "/stats")
                data = json.loads(conn.getresponse().read())
            finally:
                conn.close()
            assert data["entries"] == 1
        finally:
            proc.terminate()
            proc.wait(timeout=10)


def test_module_entry_point():
    import subprocess
    import sys

    completed = subprocess.run(
        [sys.executable, "-m", "repro.store", "--help"],
        capture_output=True, text=True,
    )
    assert completed.returncode == 0
    assert "stats" in completed.stdout
