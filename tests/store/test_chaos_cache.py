"""Regression: chaos campaigns are cacheable (satellite of the
scenario-document refactor).

Attaching a :class:`FaultPlan` used to wrap the scenario in an opaque
bound-method hook, so every faulted spec failed content-hashing and
silently bypassed the result store — a ``--chaos`` rerun recomputed
everything.  ``with_faults`` now attaches the plan declaratively as a
``"faults"`` :class:`HookSpec`, so faulted flows hash, store, and hit
the warm cache exactly like clean ones.
"""

from repro.exec.executor import _execute_payload
from repro.exec.spec import FlowSpec
from repro.hsr import CHINA_MOBILE, hsr_scenario
from repro.robustness.campaign import RetryPolicy
from repro.robustness.faults import FaultPlan, with_faults
from repro.store import CachedBackend, flow_key
from tests.store.test_backend import CountingBackend


def _chaos_payloads(n=3):
    scenario = with_faults(hsr_scenario(CHINA_MOBILE), FaultPlan.aggressive())
    return [
        (
            i,
            FlowSpec(
                scenario=scenario, duration=3.0, seed=70 + i,
                flow_id=f"chaos/{i}",
            ),
            RetryPolicy(),
        )
        for i in range(n)
    ]


class TestChaosCaching:
    def test_faulted_spec_is_hashable(self):
        _, spec, _ = _chaos_payloads(1)[0]
        key = flow_key(spec)
        assert key is not None
        # The plan's parameters are part of the identity: a different
        # intensity must map to a different store entry.
        other = spec.with_(
            scenario=with_faults(
                hsr_scenario(CHINA_MOBILE), FaultPlan.aggressive(2.0)
            )
        )
        assert flow_key(other) != key

    def test_chaos_rerun_hits_warm_cache(self, tmp_path):
        inner = CountingBackend()
        backend = CachedBackend(tmp_path / "store", inner)
        payloads = _chaos_payloads(3)
        cold = backend.map(_execute_payload, payloads)
        assert [o.cache_state for o in cold] == ["miss"] * 3
        assert backend.last_stats["uncacheable"] == 0
        warm = backend.map(_execute_payload, payloads)
        assert inner.total == 3  # the rerun simulated nothing
        assert [o.cache_state for o in warm] == ["hit"] * 3
        assert backend.last_stats == {
            "items": 3, "hits": 3, "misses": 0, "corrupt": 0,
            "uncacheable": 0, "errors": 0,
        }

    def test_clean_and_faulted_entries_are_distinct(self, tmp_path):
        inner = CountingBackend()
        backend = CachedBackend(tmp_path / "store", inner)
        backend.map(_execute_payload, _chaos_payloads(1))
        clean = [
            (
                0,
                FlowSpec(
                    scenario=hsr_scenario(CHINA_MOBILE), duration=3.0,
                    seed=70, flow_id="chaos/0",
                ),
                RetryPolicy(),
            )
        ]
        outcomes = backend.map(_execute_payload, clean)
        assert [o.cache_state for o in outcomes] == ["miss"]
