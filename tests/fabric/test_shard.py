"""Shard planning and lease arbitration: the fabric's correctness core.

The plan must be a pure function of the batch (any coordinator plans
the same shards), and the lease table's epoch rule must make exactly
one completion per shard ever count — however many workers crash,
straggle, or steal.  These tests drive the clock explicitly via the
``now`` parameters, so expiry and stealing are deterministic.
"""

import pytest

from repro.exec.spec import FlowSpec
from repro.fabric.shard import Lease, LeaseTable, ShardPlan, shard_key_for_payload
from repro.hsr import CHINA_MOBILE, hsr_scenario
from repro.robustness.campaign import RetryPolicy
from repro.store import flow_key
from repro.util.errors import ConfigurationError


def _payloads(n):
    return [
        (
            i,
            FlowSpec(
                scenario=hsr_scenario(CHINA_MOBILE), duration=3.0, seed=500 + i,
                flow_id=f"shard/{i}",
            ),
            RetryPolicy(),
        )
        for i in range(n)
    ]


class TestShardKey:
    def test_matches_store_addressing(self):
        payload = _payloads(1)[0]
        assert shard_key_for_payload(payload) == flow_key(payload[1])

    def test_unhashable_spec_falls_back_stably(self):
        # an opaque callable defeats canonical encoding
        opaque = hsr_scenario(CHINA_MOBILE).with_channel_hook(
            lambda built, seed: built
        )
        spec = FlowSpec(
            scenario=opaque, duration=3.0, seed=1, flow_id="opaque/0"
        )
        payload = (4, spec, RetryPolicy())
        key = shard_key_for_payload(payload)
        assert len(key) == 64
        assert key == shard_key_for_payload(payload)  # stable per batch slot
        assert key != shard_key_for_payload((5, spec, RetryPolicy()))


class TestShardPlan:
    def test_plan_is_a_pure_function_of_the_batch(self):
        payloads = _payloads(11)
        first = ShardPlan.for_payloads(payloads, shard_size=3)
        again = ShardPlan.for_payloads(list(payloads), shard_size=3)
        assert first == again

    def test_plan_covers_every_position_exactly_once(self):
        payloads = _payloads(13)
        plan = ShardPlan.for_payloads(payloads, shard_size=4)
        positions = [p for shard in plan.shards for p in shard]
        assert sorted(positions) == list(range(13))
        assert plan.payload_count == 13
        assert all(len(shard) <= 4 for shard in plan.shards)
        assert all(list(shard) == sorted(shard) for shard in plan.shards)

    def test_empty_batch_plans_empty(self):
        plan = ShardPlan.for_payloads([])
        assert plan.shards == ()
        assert plan.shard_count == 0

    def test_shard_size_one_is_one_flow_per_lease(self):
        plan = ShardPlan.for_payloads(_payloads(5), shard_size=1)
        assert all(len(shard) == 1 for shard in plan.shards)
        assert plan.shard_count == 5

    def test_shard_size_validation(self):
        with pytest.raises(ConfigurationError):
            ShardPlan.for_payloads(_payloads(2), shard_size=0)


class TestLeaseLifecycle:
    def test_claim_grants_each_shard_once(self):
        table = LeaseTable(3)
        leases = [table.claim("w", now=0.0) for _ in range(3)]
        assert [lease.shard for lease in leases] == [0, 1, 2]
        assert all(lease.epoch == 1 for lease in leases)
        assert table.claim("w", now=0.0) is None  # all active, none stealable

    def test_complete_accepts_exactly_once(self):
        table = LeaseTable(1)
        lease = table.claim("w", now=0.0)
        assert table.complete(lease.shard, lease.epoch) is True
        assert table.complete(lease.shard, lease.epoch) is False  # duplicate
        assert table.done
        assert table.rejected == 1

    def test_expiry_releases_a_dead_workers_shard(self):
        table = LeaseTable(1, lease_timeout_s=5.0)
        first = table.claim("victim", now=0.0)
        assert table.claim("helper", now=1.0) is None  # lease still live
        second = table.claim("helper", now=6.0)  # victim timed out
        assert second.shard == first.shard
        assert second.epoch == first.epoch + 1
        assert table.expired == 1
        # the victim's ghost completion is rejected; the helper's counts
        assert table.complete(first.shard, first.epoch) is False
        assert table.complete(second.shard, second.epoch) is True
        assert table.done

    def test_slow_but_alive_completion_wins_the_epoch_race(self):
        """A lease expires back to pending, then the original holder
        completes anyway: rejected (stale epoch), and the re-leased run
        is the one that counts — never both."""
        table = LeaseTable(1, lease_timeout_s=5.0)
        slow = table.claim("slow", now=0.0)
        # expiry happens lazily inside the next claim; drive it via a
        # claim that re-grants the shard under a new epoch
        fresh = table.claim("fresh", now=10.0)
        assert fresh.epoch == slow.epoch + 1
        assert table.complete(slow.shard, slow.epoch) is False
        assert not table.done
        assert table.complete(fresh.shard, fresh.epoch) is True
        assert table.done

    def test_expired_then_completed_shard_leaves_the_queue(self):
        """The holder was slow, not dead: expiry queues the shard for
        re-lease, but expiry alone does not bump the epoch — so if the
        original holder completes *before* anyone re-claims, its
        completion counts and the shard is pulled back out of the
        pending queue rather than pointlessly re-run."""
        table = LeaseTable(2, lease_timeout_s=5.0)
        slow = table.claim("slow", now=0.0)
        # at now=20 slow's lease expires back to pending; the idle
        # claim pops the *other* shard first (FIFO), leaving slow's
        # shard queued for re-lease
        idle = table.claim("idle", now=20.0)
        assert idle.shard != slow.shard
        assert table.expired == 1
        # the slow holder completes while its shard sits in pending:
        # accepted (epoch unchanged — nothing re-leased it) and pulled
        # out of the queue
        assert table.complete(slow.shard, slow.epoch) is True
        assert table.claim("idle2", now=20.0) is None  # queue really is empty
        assert table.complete(idle.shard, idle.epoch) is True
        assert table.done


class TestWorkStealing:
    def test_idle_worker_steals_the_oldest_aged_lease(self):
        table = LeaseTable(2, lease_timeout_s=100.0, steal_age_s=3.0)
        oldest = table.claim("w1", now=0.0)
        table.claim("w2", now=1.0)
        # too young to steal
        assert table.claim("thief", now=2.0) is None
        stolen = table.claim("thief", now=4.0)
        assert stolen.shard == oldest.shard
        assert stolen.epoch == oldest.epoch + 1
        assert table.stolen == 1
        # the straggler's completion is invalidated by the steal
        assert table.complete(oldest.shard, oldest.epoch) is False

    def test_workers_do_not_steal_from_themselves(self):
        table = LeaseTable(1, lease_timeout_s=100.0, steal_age_s=1.0)
        table.claim("w1", now=0.0)
        assert table.claim("w1", now=50.0) is None
        assert table.stolen == 0

    def test_no_steal_age_means_timeout_only(self):
        table = LeaseTable(1, lease_timeout_s=100.0)
        table.claim("w1", now=0.0)
        assert table.claim("thief", now=99.0) is None
        assert table.claim("thief", now=101.0) is not None  # expiry, not steal
        assert table.stolen == 0
        assert table.expired == 1

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            LeaseTable(1, lease_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            LeaseTable(1, steal_age_s=-1.0)


class TestLeaseAge:
    def test_age_is_relative_to_grant(self):
        lease = Lease(shard=0, epoch=1, worker="w", granted_at=10.0)
        assert lease.age(now=12.5) == pytest.approx(2.5)
