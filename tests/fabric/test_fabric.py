"""Coordinator, worker, and FabricBackend end to end on localhost.

The fabric's acceptance bar is the executor's: outcomes in batch
order, reports byte-identical to serial, however the work was sharded
or which worker ran it.  These tests run real HTTP over the loopback
— an in-process worker loop against a served coordinator, and the
full backend with spawned worker subprocesses.
"""

import pickle

import pytest

from repro.exec import Executor, FlowSpec
from repro.fabric import (
    CampaignCoordinator,
    FabricBackend,
    FabricConfig,
    FabricWorker,
    current_fabric_config,
    fabric_scope,
)
from repro.hsr import CHINA_MOBILE, CHINA_TELECOM, hsr_scenario
from repro.robustness.campaign import RetryPolicy
from repro.store import ResultStore, store_scope
from repro.util.errors import ConfigurationError


def _specs(n=4, duration=3.0):
    return [
        FlowSpec(
            scenario=hsr_scenario(CHINA_MOBILE if i % 2 else CHINA_TELECOM),
            duration=duration,
            seed=900 + i,
            cc="newreno" if i % 2 else "reno",
            flow_id=f"fabric/{i}",
        )
        for i in range(n)
    ]


def _double(payload):
    """A picklable-by-reference map function for coordinator tests."""
    index, value = payload
    return (index, value * 2)


class TestCoordinatorAndWorker:
    def test_in_process_worker_drains_the_campaign(self):
        payloads = [(i, i + 10) for i in range(7)]
        coordinator = CampaignCoordinator(_double, payloads, shard_size=2)
        with coordinator.serving() as url:
            worker = FabricWorker(url, worker_id="t1", poll_s=0.01)
            assert worker.run() == 0
            results = coordinator.wait(timeout_s=5.0)
        assert results == [(i, (i + 10) * 2) for i in range(7)]
        assert worker.executed == 7
        info = coordinator.progress_info()
        assert info["completed"] == 7
        assert info["workers_seen"] == ["t1"]
        assert info["completions_rejected"] == 0

    def test_second_worker_joins_a_drained_campaign_cleanly(self):
        coordinator = CampaignCoordinator(_double, [(0, 1)], shard_size=4)
        with coordinator.serving() as url:
            assert FabricWorker(url, worker_id="a", poll_s=0.01).run() == 0
            late = FabricWorker(url, worker_id="b", poll_s=0.01)
            assert late.run() == 0  # sees "done", exits clean
            assert late.executed == 0

    def test_worker_against_a_dead_coordinator_exits_nonzero(self):
        coordinator = CampaignCoordinator(_double, [(0, 1)])
        with coordinator.serving() as url:
            pass  # server torn down; url now points at nothing
        worker = FabricWorker(url, worker_id="orphan", poll_s=0.01)
        worker.client.RETRIES = 1
        assert worker.run() == 1

    def test_wait_timeout_raises(self):
        coordinator = CampaignCoordinator(_double, [(0, 1)])
        with pytest.raises(TimeoutError):
            coordinator.wait(poll_s=0.01, timeout_s=0.05)


class TestFabricBackend:
    def test_backend_matches_serial_byte_for_byte(self):
        specs = _specs()
        serial = Executor.for_workers(1).run(specs)
        fabric = Executor.for_workers("fabric")
        config = FabricConfig(workers=2, shard_size=2, poll_s=0.02)
        with fabric_scope(config):
            distributed = fabric.run(specs)
        assert distributed.report.to_json() == serial.report.to_json()
        for left, right in zip(serial.outcomes, distributed.outcomes):
            assert pickle.dumps(left.result.log) == pickle.dumps(right.result.log)
        backend = fabric.backend  # the FabricBackend itself
        assert backend.last_stats["items"] == len(specs)
        assert backend.last_stats["workers_spawned"] == 2
        assert backend.last_stats["restarts"] == 0

    def test_store_backed_fabric_warm_rerun_spawns_nothing(self, tmp_path):
        specs = _specs(3)
        store = ResultStore(tmp_path / "store")
        config = FabricConfig(workers=1, shard_size=2, store=str(store.root))
        serial = Executor.for_workers(1).run(specs)
        with fabric_scope(config), store_scope(store):
            cold = Executor.for_workers("fabric").run(specs)
        assert cold.report.cache_misses == len(specs)
        assert store.stats().entries == len(specs)
        with fabric_scope(config), store_scope(store):
            executor = Executor.for_workers("fabric")
            warm = executor.run(specs)
        assert warm.report.cache_hits == len(specs)
        # the all-hits batch never reaches the fabric at all: the cache
        # partition serves everything, no coordinator, no processes
        assert executor.backend.last_stats is None
        assert warm.report.to_json() == serial.report.to_json()

    def test_empty_batch_short_circuits(self):
        backend = FabricBackend(FabricConfig(workers=2))
        assert backend.map(_double, []) == []
        assert backend.last_stats["workers_spawned"] == 0

    def test_backend_is_self_supervising(self):
        assert FabricBackend.self_supervising is True
        executor = Executor.for_workers("fabric")
        assert executor.backend.name == "fabric"

    def test_unknown_worker_spelling_mentions_fabric(self):
        with pytest.raises(ConfigurationError, match="fabric"):
            Executor.for_workers("cluster")


class TestFabricConfig:
    def test_scope_installs_and_restores(self):
        config = FabricConfig(workers=3)
        assert current_fabric_config() is None
        with fabric_scope(config):
            assert current_fabric_config() is config
            with fabric_scope(None):  # None is a pass-through, not a reset
                assert current_fabric_config() is config
        assert current_fabric_config() is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FabricConfig(workers=-1)
        with pytest.raises(ConfigurationError):
            FabricConfig(max_worker_restarts=-1)
        with pytest.raises(ConfigurationError):
            FabricConfig(poll_s=0.0)
