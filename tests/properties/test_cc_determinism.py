"""Property: every registered CC is byte-identical across backends.

The executor's serial/pool/lockstep equivalence is proved for Reno in
test_executor_determinism; the zoo senders bring new scheduling
behaviour (BBR's pacing timers especially), so the contract is pinned
per variant: same specs, any backend, same bytes.
"""

import pickle

import pytest

from repro.cc import cc_names
from repro.exec import Executor, FlowSpec
from repro.hsr import hsr_scenario


def _specs(cc):
    scenario = hsr_scenario()
    return [
        FlowSpec(
            scenario=scenario,
            duration=6.0,
            seed=300 + 17 * index,
            cc=cc,
            flow_id=f"det/{cc}/{index}",
        )
        for index in range(2)
    ]


def _log_pickles(execution):
    return [pickle.dumps(o.result.log) for o in execution.outcomes]


@pytest.mark.parametrize("cc", sorted(cc_names()))
class TestBackendEquivalencePerCc:
    def test_serial_vs_lockstep(self, cc):
        serial = Executor.for_workers(1).run(_specs(cc))
        lockstep = Executor.for_workers("lockstep").run(_specs(cc))
        assert all(o.result is not None for o in serial.outcomes)
        assert _log_pickles(serial) == _log_pickles(lockstep)
        assert serial.report.to_json() == lockstep.report.to_json()


class TestPoolEquivalenceWholeZoo:
    def test_serial_vs_pool_mixed_cc_batch(self):
        # One process-pool spin-up covers every variant: the batch mixes
        # all six CCs, so pickling specs (cc_params included) and
        # worker-side sender construction are both exercised.
        specs = [spec for cc in sorted(cc_names()) for spec in _specs(cc)]
        serial = Executor.for_workers(1).run(specs)
        pooled = Executor.for_workers(2).run(specs)
        assert _log_pickles(serial) == _log_pickles(pooled)
        assert serial.report.to_json() == pooled.report.to_json()
