"""Property: batched RNG draws match scalar draws element-for-element.

This is the invariant that lets the channel loss models consume their
streams through pre-drawn blocks (see ``repro.simulator.channel``)
without perturbing a single loss decision: ``random_block(n)`` must
yield exactly the values ``n`` successive ``random()`` calls would,
and the derived blocks must apply the same per-element expressions —
including the 0/1 short-circuits that consume no underlying draw — as
their scalar counterparts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import RngStream

seeds = st.integers(min_value=0, max_value=2**32 - 1)
sizes = st.integers(min_value=0, max_value=300)


class TestRandomBlock:
    @given(seed=seeds, n=sizes)
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_element_for_element(self, seed, n):
        scalar = RngStream(seed)
        batched = RngStream(seed)
        assert batched.random_block(n) == [scalar.random() for _ in range(n)]

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_stream_position_identical_afterwards(self, seed):
        scalar = RngStream(seed)
        batched = RngStream(seed)
        for _ in range(7):
            scalar.random()
        batched.random_block(7)
        assert scalar.random() == batched.random()

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            RngStream(1).random_block(-1)


class TestBernoulliBlock:
    @given(
        seed=seeds,
        n=sizes,
        probability=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_element_for_element(self, seed, n, probability):
        scalar = RngStream(seed)
        batched = RngStream(seed)
        expected = [scalar.bernoulli(probability) for _ in range(n)]
        assert batched.bernoulli_block(probability, n) == expected

    @given(seed=seeds, probability=st.sampled_from([-0.5, 0.0, 1.0, 1.5]))
    @settings(max_examples=10, deadline=None)
    def test_extremes_short_circuit_without_consuming_draws(self, seed, probability):
        untouched = RngStream(seed)
        batched = RngStream(seed)
        outcomes = batched.bernoulli_block(probability, 25)
        assert outcomes == [probability >= 1.0] * 25
        # No underlying uniform was consumed, exactly like the scalar
        # bernoulli() short-circuit.
        assert batched.random() == untouched.random()

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            RngStream(1).bernoulli_block(0.5, -1)


class TestExpovariateBlock:
    @given(
        seed=seeds,
        n=sizes,
        rate=st.floats(min_value=1e-6, max_value=1e6),
    )
    @settings(max_examples=50, deadline=None)
    def test_bit_identical_to_scalar(self, seed, n, rate):
        scalar = RngStream(seed)
        batched = RngStream(seed)
        expected = [scalar.expovariate(rate) for _ in range(n)]
        assert batched.expovariate_block(rate, n) == expected

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            RngStream(1).expovariate_block(2.0, -1)


class TestBufferedLossEquivalence:
    """The channel models' block-buffered consumption must reproduce
    the scalar draw sequence decision-for-decision."""

    @given(seed=seeds, rate=st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=25, deadline=None)
    def test_bernoulli_loss_matches_scalar_stream(self, seed, rate):
        from repro.simulator.channel import BernoulliLoss

        model = BernoulliLoss(rate, RngStream(seed))
        scalar = RngStream(seed)
        for step in range(500):
            assert model.is_lost(step * 0.01) == scalar.bernoulli(rate)

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_gilbert_elliott_matches_scalar_replica(self, seed):
        from repro.simulator.channel import GilbertElliottLoss

        model = GilbertElliottLoss(
            RngStream(seed),
            mean_good_duration=0.5,
            mean_bad_duration=0.1,
            loss_good=0.01,
            loss_bad=0.8,
        )
        # Scalar replica of the same process, driven off an identical
        # stream with the pre-optimization scalar calls.
        rng = RngStream(seed)
        in_bad = False
        expires = rng.expovariate(1.0 / 0.5)
        for step in range(500):
            now = step * 0.01
            while now >= expires:
                in_bad = not in_bad
                expires += rng.expovariate(1.0 / (0.1 if in_bad else 0.5))
            expected = rng.bernoulli(0.8 if in_bad else 0.01)
            assert model.is_lost(now) == expected
