"""Property: batched RNG draws match scalar draws element-for-element.

This is the invariant that lets the channel loss models consume their
streams through pre-drawn blocks (see ``repro.simulator.channel``)
without perturbing a single loss decision: ``random_block(n)`` must
yield exactly the values ``n`` successive ``random()`` calls would,
and the derived blocks must apply the same per-element expressions —
including the 0/1 short-circuits that consume no underlying draw — as
their scalar counterparts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import RngStream

seeds = st.integers(min_value=0, max_value=2**32 - 1)
sizes = st.integers(min_value=0, max_value=300)


class TestRandomBlock:
    @given(seed=seeds, n=sizes)
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_element_for_element(self, seed, n):
        scalar = RngStream(seed)
        batched = RngStream(seed)
        assert list(batched.random_block(n)) == [scalar.random() for _ in range(n)]

    @given(seed=seeds, n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_returns_reused_preallocated_buffer(self, seed, n):
        stream = RngStream(seed)
        first = stream.random_block(n)
        second = stream.random_block(n)
        # Same buffer object per (stream, size): no fresh list per call.
        assert first is second

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_stream_position_identical_afterwards(self, seed):
        scalar = RngStream(seed)
        batched = RngStream(seed)
        for _ in range(7):
            scalar.random()
        batched.random_block(7)
        assert scalar.random() == batched.random()

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            RngStream(1).random_block(-1)


class TestBernoulliBlock:
    @given(
        seed=seeds,
        n=sizes,
        probability=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_element_for_element(self, seed, n, probability):
        scalar = RngStream(seed)
        batched = RngStream(seed)
        expected = [scalar.bernoulli(probability) for _ in range(n)]
        assert batched.bernoulli_block(probability, n) == expected

    @given(seed=seeds, probability=st.sampled_from([-0.5, 0.0, 1.0, 1.5]))
    @settings(max_examples=10, deadline=None)
    def test_extremes_short_circuit_without_consuming_draws(self, seed, probability):
        untouched = RngStream(seed)
        batched = RngStream(seed)
        outcomes = batched.bernoulli_block(probability, 25)
        assert outcomes == [probability >= 1.0] * 25
        # No underlying uniform was consumed, exactly like the scalar
        # bernoulli() short-circuit.
        assert batched.random() == untouched.random()

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            RngStream(1).bernoulli_block(0.5, -1)


class TestExpovariateBlock:
    @given(
        seed=seeds,
        n=sizes,
        rate=st.floats(min_value=1e-6, max_value=1e6),
    )
    @settings(max_examples=50, deadline=None)
    def test_bit_identical_to_scalar(self, seed, n, rate):
        scalar = RngStream(seed)
        batched = RngStream(seed)
        expected = [scalar.expovariate(rate) for _ in range(n)]
        assert list(batched.expovariate_block(rate, n)) == expected

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            RngStream(1).expovariate_block(2.0, -1)


class TestLognormalBlock:
    @given(
        seed=seeds,
        n=sizes,
        mu=st.floats(min_value=-5.0, max_value=5.0),
        sigma=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_bit_identical_to_scalar(self, seed, n, mu, sigma):
        scalar = RngStream(seed)
        batched = RngStream(seed)
        expected = [scalar.lognormal(mu, sigma) for _ in range(n)]
        assert list(batched.lognormal_block(mu, sigma, n)) == expected

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_stream_position_identical_afterwards(self, seed):
        scalar = RngStream(seed)
        batched = RngStream(seed)
        for _ in range(9):
            scalar.lognormal(-3.5, 1.0)
        batched.lognormal_block(-3.5, 1.0, 9)
        assert scalar.random() == batched.random()

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            RngStream(1).lognormal_block(0.0, 1.0, -1)


class TestBufferedLossEquivalence:
    """The channel models' block-buffered consumption must reproduce
    the scalar draw sequence decision-for-decision."""

    @given(seed=seeds, rate=st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=25, deadline=None)
    def test_bernoulli_loss_matches_scalar_stream(self, seed, rate):
        from repro.simulator.channel import BernoulliLoss

        model = BernoulliLoss(rate, RngStream(seed))
        scalar = RngStream(seed)
        for step in range(500):
            assert model.is_lost(step * 0.01) == scalar.bernoulli(rate)

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_gilbert_elliott_matches_scalar_replica(self, seed):
        from repro.simulator.channel import GilbertElliottLoss

        model = GilbertElliottLoss(
            RngStream(seed),
            mean_good_duration=0.5,
            mean_bad_duration=0.1,
            loss_good=0.01,
            loss_bad=0.8,
        )
        # Scalar replica of the same process, driven off an identical
        # stream with the pre-optimization scalar calls.
        rng = RngStream(seed)
        in_bad = False
        expires = rng.expovariate(1.0 / 0.5)
        for step in range(500):
            now = step * 0.01
            while now >= expires:
                in_bad = not in_bad
                expires += rng.expovariate(1.0 / (0.1 if in_bad else 0.5))
            expected = rng.bernoulli(0.8 if in_bad else 0.01)
            assert model.is_lost(now) == expected


def _make_model(name, seed):
    """Two calls with the same (name, seed) give identically-seeded models."""
    from repro.simulator.channel import (
        BernoulliLoss,
        CompositeLoss,
        GilbertElliottLoss,
        HandoffLoss,
        NoLoss,
        RoundCorrelatedLoss,
        TraceDrivenLoss,
    )

    rng = RngStream(seed, name)
    if name == "noloss":
        return NoLoss()
    if name == "bernoulli":
        return BernoulliLoss(0.23, rng)
    if name == "bernoulli_zero":
        return BernoulliLoss(0.0, rng)
    if name == "round_correlated":
        return RoundCorrelatedLoss(rng, trigger_rate=0.08, round_duration=0.2)
    if name == "gilbert_elliott":
        return GilbertElliottLoss(
            rng,
            mean_good_duration=0.4,
            mean_bad_duration=0.12,
            loss_good=0.02,
            loss_bad=0.85,
        )
    if name == "gilbert_elliott_default":
        # loss_good=0 / loss_bad=1 exercise the draw-free short-circuits.
        return GilbertElliottLoss(rng, mean_good_duration=0.4, mean_bad_duration=0.12)
    if name == "handoff":
        return HandoffLoss(
            rng, [(0.05, 0.3), (0.9, 1.1)], base_rate=0.05, loss_during=0.9
        )
    if name == "handoff_hard":
        return HandoffLoss(rng, [(0.05, 0.3)], base_rate=0.0, loss_during=1.0)
    if name == "trace_driven":
        return TraceDrivenLoss([0, 3, 4, 17, 40, 90])
    if name == "composite":
        return CompositeLoss(
            [
                BernoulliLoss(0.1, rng.spawn("bernoulli")),
                GilbertElliottLoss(
                    rng.spawn("ge"), mean_good_duration=0.4, mean_bad_duration=0.1
                ),
            ]
        )
    raise AssertionError(name)


MODEL_NAMES = [
    "noloss",
    "bernoulli",
    "bernoulli_zero",
    "round_correlated",
    "gilbert_elliott",
    "gilbert_elliott_default",
    "handoff",
    "handoff_hard",
    "trace_driven",
    "composite",
]

#: Non-decreasing times with runs of equal instants (a burst is a run of
#: equal send times), built from per-step increments.
increments = st.lists(
    st.sampled_from([0.0, 0.0, 0.0, 0.001, 0.01, 0.07, 0.4]),
    min_size=0,
    max_size=120,
)
chunkings = st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=40)


class TestIsLostBlockEquivalence:
    """Every model's ``is_lost_block`` must reproduce the scalar
    ``is_lost`` decision sequence element-for-element, for any
    partition of the same times into bursts."""

    @pytest.mark.parametrize("name", MODEL_NAMES)
    @given(seed=seeds, steps=increments, chunk_sizes=chunkings)
    @settings(max_examples=25, deadline=None)
    def test_block_matches_scalar_for_any_burst_partition(
        self, name, seed, steps, chunk_sizes
    ):
        times = []
        now = 0.0
        for step in steps:
            now += step
            times.append(now)
        scalar_model = _make_model(name, seed)
        block_model = _make_model(name, seed)
        expected = [scalar_model.is_lost(t) for t in times]
        got = []
        cursor = 0
        for size in chunk_sizes:
            if cursor >= len(times):
                break
            got.extend(block_model.is_lost_block(times[cursor : cursor + size]))
            cursor += size
        if cursor < len(times):
            got.extend(block_model.is_lost_block(times[cursor:]))
        assert got == expected

    @pytest.mark.parametrize("name", MODEL_NAMES)
    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_stream_position_identical_after_block(self, name, seed):
        if name in ("noloss", "trace_driven"):
            return  # draw-free models have no stream to check
        scalar_model = _make_model(name, seed)
        block_model = _make_model(name, seed)
        times = [0.0, 0.0, 0.0, 0.25, 0.25, 0.5, 1.0, 1.0]
        for t in times:
            scalar_model.is_lost(t)
        block_model.is_lost_block(times)
        # The next scalar decision agrees, so the underlying streams are
        # in the same position.
        for t in (1.5, 1.5, 2.0):
            assert block_model.is_lost(t) == scalar_model.is_lost(t)

    def test_base_class_default_loops_scalar(self):
        from repro.simulator.channel import LossModel

        class EveryThird(LossModel):
            def __init__(self):
                self.count = 0

            def is_lost(self, now):
                self.count += 1
                return self.count % 3 == 0

        model = EveryThird()
        # Third-party models that only implement the scalar hook get
        # block evaluation for free via the base-class default.
        assert model.is_lost_block([0.0] * 7) == [
            False, False, True, False, False, True, False,
        ]
