"""Property: the fabric is byte-identical to serial, even through chaos.

The distributed leg of the determinism suite: a campaign run on the
fabric — workers over HTTP, shards under leases, a remote store in the
middle — must produce the same report bytes and trace pickles as a
serial run, including when a worker is SIGKILLed mid-shard and a fresh
worker attaches to finish the job.  Determinism survives because specs
carry their own seeds, the lease table's epoch rule accepts exactly
one completion per shard, and the executor merges outcomes in spec
order regardless of which worker produced them.
"""

import pickle

from repro.exec import Executor, FlowSpec
from repro.fabric import FabricConfig, fabric_scope
from repro.hsr import CHINA_MOBILE, CHINA_TELECOM, hsr_scenario
from repro.store import StoreServer, store_scope
from repro.traces.events import FlowMetadata


def _specs(n=4, duration=3.0):
    specs = []
    for i in range(n):
        flow_id = f"prop-fabric/{i}"
        metadata = FlowMetadata(
            flow_id=flow_id, provider="CM", technology="LTE", scenario="hsr",
            capture_month="2015-01", phone_model="Note 3",
            duration=duration, seed=640 + i,
        )
        specs.append(
            FlowSpec(
                scenario=hsr_scenario(CHINA_MOBILE if i % 2 else CHINA_TELECOM),
                duration=duration,
                seed=640 + i,
                cc="newreno" if i % 2 else "reno",
                flow_id=flow_id,
                metadata=metadata,
            )
        )
    return specs


def _trace_pickles(execution):
    return [pickle.dumps(outcome.result.log) for outcome in execution.outcomes]


class TestKillAndRejoin:
    def test_sigkilled_worker_mid_shard_changes_no_bytes(self):
        """Two workers, one told to SIGKILL itself after its second
        flow execution — with two-flow shards that lands mid-shard,
        with the lease unreturned.  The lease expires, the respawned
        worker (the 'fresh worker attaching') re-runs the shard, and
        the epoch rule keeps the dead worker's half-done work from
        ever counting."""
        specs = _specs()
        serial = Executor.for_workers(1).run(specs)
        config = FabricConfig(
            workers=2,
            shard_size=2,
            poll_s=0.02,
            lease_timeout_s=3.0,
            max_worker_restarts=4,
            extra_worker_args=(("--sigkill-after", "2"),),
        )
        fabric = Executor.for_workers("fabric")
        with fabric_scope(config):
            chaotic = fabric.run(specs)
        stats = fabric.backend.last_stats
        assert stats["restarts"] >= 1  # the chaos worker really died
        assert chaotic.report.to_json() == serial.report.to_json()
        assert _trace_pickles(chaotic) == _trace_pickles(serial)

    def test_kill_rejoin_with_remote_store_then_warm_rerun(self, tmp_path):
        """The full acceptance path: HTTP store, a worker SIGKILLed
        mid-campaign, byte-identity with serial — then a warm rerun
        that serves every flow from the remote store and simulates
        nothing (the cache partition never even engages the fabric)."""
        specs = _specs()
        serial = Executor.for_workers(1).run(specs)
        with StoreServer(tmp_path / "store") as server:
            config = FabricConfig(
                workers=2,
                shard_size=2,
                poll_s=0.02,
                lease_timeout_s=3.0,
                max_worker_restarts=4,
                store=server.url,
                extra_worker_args=(("--sigkill-after", "2"),),
            )
            fabric = Executor.for_workers("fabric")
            with fabric_scope(config), store_scope(server.url):
                chaotic = fabric.run(specs)
            assert fabric.backend.last_stats["restarts"] >= 1
            assert chaotic.report.to_json() == serial.report.to_json()
            assert _trace_pickles(chaotic) == _trace_pickles(serial)
            # every flow banked over HTTP, even the dead worker's
            assert server.store.stats().entries == len(specs)
            warm_executor = Executor.for_workers("fabric")
            with fabric_scope(config), store_scope(server.url):
                warm = warm_executor.run(specs)
            assert warm.report.cache_hits == len(specs)
            assert warm.report.cache_misses == 0
            assert warm_executor.backend.last_stats is None  # fabric untouched
            assert warm.report.to_json() == serial.report.to_json()
            assert _trace_pickles(warm) == _trace_pickles(serial)
