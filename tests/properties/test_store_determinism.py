"""Property: a store-backed campaign is byte-identical to an uncached one.

The store's whole contract is invisibility: whether flows come from the
simulator or from disk, and whichever backend runs the misses, every
trace pickle and the serialised report must match an uncached serial
run byte for byte.  A campaign killed midway (here: a run of only the
first k specs) must resume by executing exactly the flows still
missing — and nothing else.
"""

import os
import pickle
import subprocess
import sys

import repro.exec.executor as executor_module
from repro.exec import Executor, FlowSpec
from repro.hsr import CHINA_MOBILE, CHINA_TELECOM, hsr_scenario
from repro.store import ResultStore, flow_key, store_scope
from repro.traces.events import FlowMetadata


def _specs(n=4, duration=4.0):
    specs = []
    for i in range(n):
        flow_id = f"prop-store/{i}"
        metadata = FlowMetadata(
            flow_id=flow_id, provider="CM", technology="LTE", scenario="hsr",
            capture_month="2015-01", phone_model="Note 3",
            duration=duration, seed=300 + i,
        )
        specs.append(
            FlowSpec(
                scenario=hsr_scenario(CHINA_MOBILE if i % 2 else CHINA_TELECOM),
                duration=duration,
                seed=300 + i,
                cc="newreno" if i % 2 else "reno",
                flow_id=flow_id,
                metadata=metadata,
            )
        )
    return specs


def _trace_pickles(execution):
    return [pickle.dumps(trace) for trace in execution.traces]


class TestCachedEqualsFresh:
    def test_warm_cache_identical_across_backends(self, tmp_path):
        specs = _specs()
        fresh = Executor.for_workers(1).run(specs)
        store = ResultStore(tmp_path / "store")
        with store_scope(store):
            cold = Executor.for_workers(1).run(specs)
        assert cold.report.cache_misses == len(specs)
        assert _trace_pickles(cold) == _trace_pickles(fresh)
        assert cold.report.to_json() == fresh.report.to_json()
        for workers in (1, 2, "auto"):
            with store_scope(store):
                warm = Executor.for_workers(workers).run(specs)
            assert warm.report.cache_hits == len(specs), workers
            assert _trace_pickles(warm) == _trace_pickles(fresh), workers
            assert warm.report.to_json() == fresh.report.to_json(), workers

    def test_kill_and_resume_runs_only_the_remainder(self, tmp_path, monkeypatch):
        specs = _specs()
        fresh = Executor.for_workers(1).run(specs)
        store = ResultStore(tmp_path / "store")
        # A campaign killed after k flows: only those entries exist.
        k = 2
        with store_scope(store):
            Executor.for_workers(1).run(specs[:k])
        assert store.stats().entries == k
        # The rerun must simulate exactly the n-k missing flows.
        calls = []
        original = executor_module.simulate_spec
        monkeypatch.setattr(
            executor_module,
            "simulate_spec",
            lambda spec: calls.append(spec.flow_id) or original(spec),
        )
        with store_scope(store):
            resumed = Executor.for_workers(1).run(specs)
        assert sorted(calls) == sorted(s.flow_id for s in specs[k:])
        assert resumed.report.cache_hits == k
        assert resumed.report.cache_misses == len(specs) - k
        assert _trace_pickles(resumed) == _trace_pickles(fresh)
        assert resumed.report.to_json() == fresh.report.to_json()
        # ...and a second full run touches the simulator not at all.
        calls.clear()
        with store_scope(store):
            warm = Executor.for_workers(1).run(specs)
        assert calls == []
        assert warm.report.cache_hits == len(specs)
        assert _trace_pickles(warm) == _trace_pickles(fresh)

    def test_seeded_loop_over_roots(self, tmp_path):
        # Key stability under many seeds: same spec -> same key, and a
        # warm rerun serves every one of them.
        store = ResultStore(tmp_path / "store")
        specs = [
            FlowSpec(
                scenario=hsr_scenario(CHINA_MOBILE),
                duration=2.0,
                seed=seed,
                flow_id=f"loop/{seed}",
            )
            for seed in range(7000, 7006)
        ]
        keys = [flow_key(spec) for spec in specs]
        assert len(set(keys)) == len(keys)
        assert keys == [flow_key(spec) for spec in specs]
        with store_scope(store):
            Executor.for_workers(1).run(specs)
            warm = Executor.for_workers(1).run(specs)
        assert warm.report.cache_hits == len(specs)


class TestKeyStability:
    def test_flow_key_stable_across_processes(self):
        """The content hash must not depend on interpreter hash state."""
        snippet = (
            "from repro.exec import FlowSpec\n"
            "from repro.hsr import CHINA_MOBILE, hsr_scenario\n"
            "from repro.store import flow_key\n"
            "print(flow_key(FlowSpec(scenario=hsr_scenario(CHINA_MOBILE),"
            " duration=10.0, seed=7)))\n"
        )
        keys = set()
        for hashseed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (os.path.join(os.getcwd(), "src"),
                            env.get("PYTHONPATH")) if p
            )
            completed = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, env=env, check=True,
            )
            keys.add(completed.stdout.strip())
        assert len(keys) == 1
        assert len(keys.pop()) == 64
