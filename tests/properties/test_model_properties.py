"""Property-based tests (hypothesis) on the closed-form models.

These probe the model over its whole domain rather than hand-picked
points: positivity, boundedness by the window-limitation ceiling,
monotonicity in each loss parameter, and the Padhye limit.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import components as cf
from repro.core.enhanced import ModelOptions, enhanced_throughput
from repro.core.params import LinkParams

# Strategy for a valid operating point.
rtts = st.floats(min_value=0.01, max_value=1.0)
timeouts = st.floats(min_value=0.1, max_value=10.0)
data_losses = st.floats(min_value=1e-5, max_value=0.4)
ack_losses = st.floats(min_value=0.0, max_value=0.6)
recovery_losses = st.floats(min_value=0.0, max_value=0.9)
wmaxes = st.floats(min_value=2.0, max_value=256.0)
bs = st.integers(min_value=1, max_value=8)


@st.composite
def link_params(draw):
    return LinkParams(
        rtt=draw(rtts),
        timeout=draw(timeouts),
        data_loss=draw(data_losses),
        ack_loss=draw(ack_losses),
        recovery_loss=draw(recovery_losses),
        wmax=draw(wmaxes),
        b=draw(bs),
    )


@st.composite
def sane_link_params(draw):
    """Operating points inside the model's intended domain.

    When loss is so heavy that the equilibrium window clamps at one
    packet, the closed form degenerates (its floor clamps can invert
    monotonicity); the paper's model targets windows of several
    packets, so the monotonicity properties are asserted there.
    """
    return LinkParams(
        rtt=draw(rtts),
        timeout=draw(timeouts),
        data_loss=draw(st.floats(min_value=1e-5, max_value=0.04)),
        ack_loss=draw(st.floats(min_value=1e-6, max_value=0.15)),
        recovery_loss=draw(st.floats(min_value=0.0, max_value=0.6)),
        wmax=draw(st.floats(min_value=16.0, max_value=256.0)),
        b=draw(st.integers(min_value=1, max_value=2)),
    )


class TestEnhancedModelProperties:
    @given(link_params())
    @settings(max_examples=200, deadline=None)
    def test_throughput_positive_and_finite(self, params):
        prediction = enhanced_throughput(params)
        assert prediction.throughput > 0.0
        assert math.isfinite(prediction.throughput)

    @given(link_params())
    @settings(max_examples=200, deadline=None)
    def test_throughput_bounded_by_window_ceiling(self, params):
        prediction = enhanced_throughput(params)
        assert prediction.throughput <= params.wmax / params.rtt + 1e-6

    @given(link_params())
    @settings(max_examples=200, deadline=None)
    def test_internal_probabilities_valid(self, params):
        prediction = enhanced_throughput(params)
        assert 0.0 <= prediction.timeout_probability <= 1.0
        assert 0.0 <= prediction.consecutive_timeout_probability < 1.0
        assert 0.0 <= prediction.ack_burst_loss < 1.0
        assert 0.0 <= prediction.spurious_timeout_fraction <= 1.0 + 1e-9
        assert prediction.expected_timeouts >= 1.0
        assert prediction.expected_rounds >= 1.0
        assert prediction.expected_window >= 1.0

    @given(sane_link_params(), st.floats(min_value=1.1, max_value=4.0))
    @settings(max_examples=150, deadline=None)
    def test_decreasing_in_data_loss(self, params, factor):
        worse_loss = min(params.data_loss * factor, 0.45)
        better = enhanced_throughput(params).throughput
        worse = enhanced_throughput(params.with_(data_loss=worse_loss)).throughput
        assert worse <= better * (1.0 + 1e-9)

    @given(sane_link_params(), st.floats(min_value=1.1, max_value=4.0))
    @settings(max_examples=150, deadline=None)
    def test_decreasing_in_rtt(self, params, factor):
        better = enhanced_throughput(params).throughput
        worse = enhanced_throughput(params.with_(rtt=params.rtt * factor)).throughput
        assert worse <= better * (1.0 + 1e-9)

    @given(sane_link_params(), st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=150, deadline=None)
    def test_decreasing_in_ack_burst_override(self, params, pa):
        baseline = enhanced_throughput(
            params, ModelOptions(ack_burst_override=0.0)
        ).throughput
        degraded = enhanced_throughput(
            params, ModelOptions(ack_burst_override=pa)
        ).throughput
        assert degraded <= baseline * (1.0 + 1e-9)

    @given(sane_link_params())
    @settings(max_examples=150, deadline=None)
    def test_stationary_projection_never_slower(self, params):
        # Removing ACK loss and recovery-loss elevation can only help.
        hsr = enhanced_throughput(params).throughput
        stationary = enhanced_throughput(
            params.with_(
                ack_loss=0.0, recovery_loss=min(params.data_loss, params.recovery_loss)
            )
        ).throughput
        assert stationary >= hsr * (1.0 - 1e-9)

    @given(link_params())
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, params):
        assert (
            enhanced_throughput(params).throughput
            == enhanced_throughput(params).throughput
        )


class TestComponentProperties:
    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_f_backoff_range(self, p):
        value = cf.f_backoff(p)
        assert 1.0 <= value <= 64.0

    @given(st.floats(min_value=1e-6, max_value=0.99), st.integers(min_value=1, max_value=8))
    @settings(max_examples=200, deadline=None)
    def test_first_loss_round_at_least_one(self, p, b):
        assert cf.first_loss_round(p, b) >= 1.0

    @given(
        st.floats(min_value=1.0, max_value=1000.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_expected_rounds_bounds(self, x_p, pa):
        rounds = cf.expected_ca_rounds(x_p, pa)
        assert 1.0 - 1e-9 <= rounds <= x_p + 1.0 + 1e-9

    @given(
        st.floats(min_value=0.0, max_value=0.9),
        st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=200, deadline=None)
    def test_consecutive_timeout_probability_bounds(self, q, pa):
        p = cf.consecutive_timeout_probability(q, pa)
        assert max(q, pa) - 1e-12 <= p < 1.0

    @given(
        st.floats(min_value=1e-4, max_value=0.6),
        st.floats(min_value=1.0, max_value=512.0),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_ack_burst_probability_bounds(self, pa, window, b):
        value = cf.ack_burst_loss_probability(pa, window, b, per_ack=True)
        # Can underflow to exactly 0.0 for huge windows; never exceeds
        # the single-ACK loss rate (the exponent is floored at 1).
        assert 0.0 <= value <= pa + 1e-12
