"""Property: the parallel backend is byte-identical to the serial one.

This is the executor's central contract (and the acceptance bar for
``generate_dataset(..., workers=N)``): moving flows into worker
processes must not change a single byte of any trace or of the campaign
report.  Determinism holds because every random stream is derived from
the spec's own seed and specs are self-contained picklable values.

Traces are compared pickle-by-pickle: a *batched* pickle of the whole
list can legitimately differ between the two runs through memoised
references to objects shared in-process, without any value differing.
"""

import pickle

from repro.exec import Executor, FlowSpec
from repro.hsr import CHINA_MOBILE, CHINA_TELECOM, hsr_scenario
from repro.traces.generator import generate_dataset


def _trace_pickles(dataset):
    return [pickle.dumps(trace) for trace in dataset.traces]


class TestCampaignBackendEquivalence:
    def test_dataset_identical_serial_vs_pool(self):
        serial = generate_dataset(seed=2015, duration=5.0, flow_scale=0.02)
        pooled = generate_dataset(
            seed=2015, duration=5.0, flow_scale=0.02, workers=2
        )
        assert serial.flow_count == pooled.flow_count > 0
        assert _trace_pickles(serial) == _trace_pickles(pooled)
        assert serial.report.to_json() == pooled.report.to_json()

    def test_dataset_identical_serial_vs_lockstep_vs_auto(self):
        serial = generate_dataset(seed=2015, duration=5.0, flow_scale=0.02)
        lockstep = generate_dataset(
            seed=2015, duration=5.0, flow_scale=0.02, workers="lockstep"
        )
        auto = generate_dataset(
            seed=2015, duration=5.0, flow_scale=0.02, workers="auto"
        )
        assert serial.flow_count == lockstep.flow_count == auto.flow_count > 0
        assert _trace_pickles(serial) == _trace_pickles(lockstep)
        assert _trace_pickles(serial) == _trace_pickles(auto)
        assert serial.report.to_json() == lockstep.report.to_json()
        assert serial.report.to_json() == auto.report.to_json()

    def test_mixed_spec_batch_identical(self):
        # Mixed cc variants and scenarios through the raw executor.
        specs = [
            FlowSpec(
                scenario=hsr_scenario(CHINA_MOBILE if i % 2 else CHINA_TELECOM),
                duration=4.0,
                seed=100 + i,
                cc="newreno" if i % 2 else "reno",
                flow_id=f"prop/{i}",
            )
            for i in range(4)
        ]
        serial = Executor.for_workers(1).run(specs)
        pooled = Executor.for_workers(2).run(specs)
        assert serial.report.to_json() == pooled.report.to_json()
        for left, right in zip(serial.outcomes, pooled.outcomes):
            assert pickle.dumps(left.result.log) == pickle.dumps(right.result.log)
            assert left.result.throughput == right.result.throughput
