"""Property-based tests on the simulator substrate.

Invariants: conservation (delivered + lost + in-flight = sent),
cumulative-ACK monotonicity, RTO boundedness, channel loss-rate
convergence, and determinism under a fixed seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import (
    BernoulliLoss,
    ConnectionConfig,
    GilbertElliottLoss,
    RoundCorrelatedLoss,
    RtoEstimator,
    run_flow,
)
from repro.util.rng import RngStream

seeds = st.integers(min_value=0, max_value=2**31 - 1)
loss_rates = st.floats(min_value=0.0, max_value=0.2)


def _run(seed, data_rate, ack_rate, duration=8.0):
    rng = RngStream(seed, "prop")
    return run_flow(
        ConnectionConfig(duration=duration, wmax=32.0),
        BernoulliLoss(data_rate, rng.spawn("d")),
        BernoulliLoss(ack_rate, rng.spawn("a")),
        seed=seed,
    )


class TestFlowInvariants:
    @given(seeds, loss_rates, loss_rates)
    @settings(max_examples=25, deadline=None)
    def test_conservation(self, seed, data_rate, ack_rate):
        result = _run(seed, data_rate, ack_rate)
        log = result.log
        arrived = sum(1 for r in log.data_packets if r.arrival_time is not None)
        in_flight = sum(
            1 for r in log.data_packets if r.arrival_time is None and not r.lost
        )
        assert arrived + log.data_lost + in_flight == log.data_sent

    @given(seeds, loss_rates, loss_rates)
    @settings(max_examples=25, deadline=None)
    def test_delivered_bounded_by_arrivals(self, seed, data_rate, ack_rate):
        result = _run(seed, data_rate, ack_rate)
        log = result.log
        arrived = sum(1 for r in log.data_packets if r.arrival_time is not None)
        assert log.delivered_payloads + log.duplicate_payloads == arrived

    @given(seeds, loss_rates, loss_rates)
    @settings(max_examples=25, deadline=None)
    def test_ack_values_monotone_per_send_order(self, seed, data_rate, ack_rate):
        result = _run(seed, data_rate, ack_rate)
        values = [a.ack_seq for a in result.log.acks]
        assert all(later >= earlier for earlier, later in zip(values, values[1:]))

    @given(seeds, loss_rates, loss_rates)
    @settings(max_examples=25, deadline=None)
    def test_cwnd_positive(self, seed, data_rate, ack_rate):
        result = _run(seed, data_rate, ack_rate)
        assert all(sample.cwnd >= 1.0 for sample in result.log.cwnd_samples)

    @given(seeds, loss_rates, loss_rates)
    @settings(max_examples=15, deadline=None)
    def test_deterministic_under_seed(self, seed, data_rate, ack_rate):
        first = _run(seed, data_rate, ack_rate, duration=4.0)
        second = _run(seed, data_rate, ack_rate, duration=4.0)
        assert first.log.data_sent == second.log.data_sent
        assert first.throughput == second.throughput

    @given(seeds, loss_rates, loss_rates)
    @settings(max_examples=25, deadline=None)
    def test_recovery_phase_intervals_disjoint(self, seed, data_rate, ack_rate):
        result = _run(seed, data_rate, ack_rate)
        phases = result.log.completed_recovery_phases()
        ordered = sorted(phases, key=lambda phase: phase.start_time)
        for earlier, later in zip(ordered, ordered[1:]):
            assert earlier.end_time <= later.start_time + 1e-9


class TestRtoProperties:
    @given(st.lists(st.floats(min_value=0.001, max_value=5.0), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_rto_within_configured_band(self, samples):
        rto = RtoEstimator(initial_rto=1.0, min_rto=0.2, max_rto=60.0)
        for sample in samples:
            rto.on_measurement(sample)
            assert 0.2 <= rto.base_rto <= 60.0

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_backoff_never_exceeds_64x(self, timeouts):
        rto = RtoEstimator(initial_rto=1.0, max_rto=1000.0)
        for _ in range(timeouts):
            rto.on_timeout()
        assert rto.current_rto <= 64.0 + 1e-9


class TestChannelProperties:
    @given(seeds, st.floats(min_value=0.01, max_value=0.5))
    @settings(max_examples=20, deadline=None)
    def test_bernoulli_rate_converges(self, seed, rate):
        model = BernoulliLoss(rate, RngStream(seed, "b"))
        n = 4000
        losses = sum(model.is_lost(float(i)) for i in range(n))
        assert abs(losses / n - rate) < 0.05

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_gilbert_elliott_monotone_time_safe(self, seed):
        model = GilbertElliottLoss(RngStream(seed, "ge"), 2.0, 0.5)
        for i in range(1000):
            model.is_lost(i * 0.01)  # must never raise

    # min_value 0.005: at 0.001 the expected trigger count over 3000
    # draws is ~3, so a legitimate seed can produce zero triggers and
    # fail the rate bound spuriously.
    @given(seeds, st.floats(min_value=0.005, max_value=0.05))
    @settings(max_examples=20, deadline=None)
    def test_round_correlated_rate_at_least_trigger(self, seed, trigger):
        model = RoundCorrelatedLoss(RngStream(seed, "rc"), trigger, 0.05)
        n = 3000
        losses = sum(model.is_lost(i * 0.002) for i in range(n))
        # Lifetime rate must exceed the trigger rate (correlated tail).
        assert losses / n >= trigger * 0.3
