"""Tests for the scenario name registry and reference resolution."""

import pytest

from repro.hsr.scenario import Scenario
from repro.scenarios import (
    compile_scenario,
    document_to_yaml,
    get_scenario_document,
    library_dir,
    library_paths,
    parse_document,
    register_document,
    resolve_scenario_ref,
    scenario_names,
    unregister_document,
)
from repro.util.errors import ConfigurationError


def make_document(name="registry-test"):
    return parse_document(
        {
            "name": name,
            "mobility": {"preset": "driving"},
            "provider": "China Unicom",
        }
    )


@pytest.fixture
def registered():
    document = make_document()
    register_document(document)
    yield document
    unregister_document(document.name)


class TestLibraryDiscovery:
    def test_library_dir_exists(self):
        assert library_dir().is_dir()

    def test_paths_sorted_and_known_suffixes(self):
        paths = library_paths()
        assert paths
        assert [path.name for path in paths] == sorted(
            path.name for path in paths
        )
        assert all(path.suffix in (".yaml", ".yml", ".json") for path in paths)


class TestRegistry:
    def test_bundled_names_visible(self):
        names = scenario_names()
        assert "hsr-china-mobile" in names
        assert list(names) == sorted(names)

    def test_register_and_get(self, registered):
        assert registered.name in scenario_names()
        assert get_scenario_document(registered.name) == registered

    def test_register_duplicate_raises(self, registered):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_document(make_document(registered.name))

    def test_registration_shadows_bundled(self):
        shadow = make_document("hsr-china-mobile")
        register_document(shadow)
        try:
            assert get_scenario_document("hsr-china-mobile") == shadow
        finally:
            unregister_document("hsr-china-mobile")
        assert get_scenario_document("hsr-china-mobile") != shadow

    def test_unregister_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="not registered"):
            unregister_document("never-registered")

    def test_get_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario_document("no-such-scenario")


class TestResolveRef:
    def test_resolves_bundled_name(self):
        document = resolve_scenario_ref("hsr-china-mobile")
        assert document.name == "hsr-china-mobile"

    def test_resolves_registered_name(self, registered):
        assert resolve_scenario_ref(registered.name) == registered

    def test_resolves_file_path(self, tmp_path):
        document = make_document("from-a-file")
        path = tmp_path / "from-a-file.yaml"
        path.write_text(document_to_yaml(document), encoding="utf-8")
        assert resolve_scenario_ref(str(path)) == document

    def test_unknown_ref_raises(self):
        with pytest.raises(ConfigurationError, match="neither a known"):
            resolve_scenario_ref("definitely/not/here.yaml")

    def test_compile_scenario_from_ref(self, registered):
        scenario = compile_scenario(registered.name)
        assert isinstance(scenario, Scenario)
        assert scenario.name == registered.name
