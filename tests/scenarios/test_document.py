"""Tests for parsing and serializing :class:`ScenarioDocument`."""

import pytest

from repro.robustness.faults import FaultPlan
from repro.scenarios import (
    CellsSpec,
    MobilitySpec,
    ScenarioDocument,
    SchemaError,
    document_to_dict,
    load_document_text,
    parse_document,
)

MINIMAL = {
    "name": "minimal",
    "mobility": {"preset": "btr"},
    "provider": "China Mobile",
}


def full_document_text():
    return """\
name: full
description: every field exercised
tags: [test, full]
mobility:
  name: test-run
  peak_speed_kmh: 180
  acceleration: 0.6
  route_length_m: 50000
cells:
  spacing_m: 2000
  offset_m: 900
provider:
  name: Test Carrier
  technology: 3G
  one_way_delay_s: 0.05
  base_data_loss: 0.004
  base_ack_loss: 0.003
flow_start_offset_s: 120
faults:
  name: rough
  handoff_storm_rate: 0.02
extra_loss:
  - direction: data
    mean_good_s: 20.0
    mean_bad_s: 0.5
    label: tunnel
scenario_name: legacy/full
"""


class TestParseDocument:
    def test_minimal_defaults(self):
        document = parse_document(dict(MINIMAL))
        assert document.name == "minimal"
        assert document.mobility == MobilitySpec(preset="btr")
        assert document.provider.ref == "China Mobile"
        assert document.cells == CellsSpec()
        assert document.flow_start_offset_s == 300.0
        assert document.faults is None
        assert document.extra_loss == ()
        assert document.scenario_name is None

    def test_full_document(self):
        document = load_document_text(full_document_text(), "full.yaml")
        assert document.tags == ("test", "full")
        assert document.mobility.peak_speed_mps == pytest.approx(50.0)
        assert document.provider.name == "Test Carrier"
        assert document.provider.technology == "3G"
        assert isinstance(document.faults, FaultPlan)
        assert document.faults.handoff_storm_rate == 0.02
        assert document.extra_loss[0].label == "tunnel"
        assert document.scenario_name == "legacy/full"

    def test_requires_name(self):
        with pytest.raises(SchemaError, match="'name'"):
            parse_document({"mobility": {"preset": "btr"}, "provider": "x"})

    def test_rejects_blank_name(self):
        data = dict(MINIMAL, name="   ")
        with pytest.raises(SchemaError, match="non-empty"):
            parse_document(data)

    def test_requires_mobility_and_provider(self):
        with pytest.raises(SchemaError, match="'mobility'"):
            parse_document({"name": "x", "provider": "China Mobile"})
        with pytest.raises(SchemaError, match="'provider'"):
            parse_document({"name": "x", "mobility": {"preset": "btr"}})

    def test_unknown_top_level_key(self):
        data = dict(MINIMAL, velocity=300)
        with pytest.raises(SchemaError, match="'velocity'"):
            parse_document(data)

    def test_kmh_and_mps_are_exclusive(self):
        data = dict(
            MINIMAL,
            mobility={"peak_speed_kmh": 100, "peak_speed_mps": 30},
        )
        with pytest.raises(SchemaError, match="not both"):
            parse_document(data)

    def test_mobility_needs_preset_or_speed(self):
        data = dict(MINIMAL, mobility={"acceleration": 0.5})
        with pytest.raises(SchemaError, match="unknown field|preset or a peak"):
            parse_document(dict(MINIMAL, mobility={}))
        with pytest.raises(SchemaError):
            parse_document(data)

    def test_preset_takes_no_other_fields(self):
        data = dict(
            MINIMAL, mobility={"preset": "btr", "peak_speed_kmh": 300}
        )
        with pytest.raises(SchemaError, match="takes no other fields"):
            parse_document(data)

    def test_unknown_preset(self):
        data = dict(MINIMAL, mobility={"preset": "warp"})
        with pytest.raises(SchemaError, match="one of"):
            parse_document(data)

    def test_negative_flow_start_offset(self):
        data = dict(MINIMAL, flow_start_offset_s=-1.0)
        with pytest.raises(SchemaError, match=">= 0"):
            parse_document(data)

    def test_cells_offset_must_be_below_spacing(self):
        data = dict(MINIMAL, cells={"spacing_m": 1000, "offset_m": 1000})
        with pytest.raises(SchemaError, match="smaller than spacing"):
            parse_document(data)

    def test_tags_must_be_strings(self):
        data = dict(MINIMAL, tags=[1, 2])
        with pytest.raises(SchemaError, match="list of strings"):
            parse_document(data)

    def test_inline_provider_requires_core_fields(self):
        data = dict(MINIMAL, provider={"name": "X"})
        with pytest.raises(SchemaError, match="one_way_delay_s"):
            parse_document(data)

    def test_extra_loss_direction_choices(self):
        data = dict(
            MINIMAL,
            extra_loss=[
                {"direction": "up", "mean_good_s": 1.0, "mean_bad_s": 1.0}
            ],
        )
        with pytest.raises(SchemaError, match="one of"):
            parse_document(data)


class TestDocumentToDict:
    def test_parse_is_inverse_minimal(self):
        document = parse_document(dict(MINIMAL))
        assert parse_document(document_to_dict(document)) == document

    def test_parse_is_inverse_full(self):
        document = load_document_text(full_document_text())
        assert parse_document(document_to_dict(document)) == document

    def test_emits_speeds_in_mps(self):
        document = load_document_text(full_document_text())
        data = document_to_dict(document)
        assert "peak_speed_kmh" not in data["mobility"]
        assert data["mobility"]["peak_speed_mps"] == pytest.approx(50.0)

    def test_preset_serializes_as_preset(self):
        data = document_to_dict(parse_document(dict(MINIMAL)))
        assert data["mobility"] == {"preset": "btr"}
        assert data["provider"] == "China Mobile"
