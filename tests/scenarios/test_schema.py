"""Tests for the schema plumbing: loading, line maps, located errors."""

import pytest

from repro.scenarios.schema import (
    SchemaError,
    SourceInfo,
    expect_mapping,
    load_mapping,
    reject_unknown_keys,
    take,
)

SAMPLE = """\
name: sample
mobility:
  preset: btr
provider: China Mobile
extra_loss:
  - direction: data
    mean_good_s: 10.0
    mean_bad_s: 1.0
"""


class TestLoadMapping:
    def test_parses_yaml(self):
        data, info = load_mapping(SAMPLE, "sample.yaml")
        assert data["name"] == "sample"
        assert info.name == "sample.yaml"

    def test_parses_json(self):
        data, _ = load_mapping('{"name": "x", "mobility": {"preset": "btr"}}')
        assert data["mobility"] == {"preset": "btr"}

    def test_line_map_points_at_keys(self):
        _, info = load_mapping(SAMPLE, "sample.yaml")
        assert info.line_of("name") == 1
        assert info.line_of("mobility") == 2
        assert info.line_of("mobility.preset") == 3
        assert info.line_of("provider") == 4
        assert info.line_of("extra_loss[0].direction") == 6

    def test_rejects_non_mapping_document(self):
        with pytest.raises(SchemaError, match="must be a mapping"):
            load_mapping("- a\n- b\n")

    def test_rejects_invalid_yaml_with_line(self):
        with pytest.raises(SchemaError, match="not valid YAML") as excinfo:
            load_mapping("a: b\n  c: [unclosed\n", "broken.yaml")
        assert excinfo.value.source == "broken.yaml"


class TestValidationHelpers:
    def test_expect_mapping_error_names_path(self):
        with pytest.raises(SchemaError, match="mobility"):
            expect_mapping("not-a-dict", "mobility", SourceInfo())

    def test_unknown_key_error_names_key_and_line(self):
        _, info = load_mapping(SAMPLE, "sample.yaml")
        with pytest.raises(SchemaError) as excinfo:
            reject_unknown_keys(
                {"provider": 1}, ["name", "mobility"], "", info
            )
        message = str(excinfo.value)
        assert "'provider'" in message
        assert "line 4" in message
        assert "sample.yaml" in message

    def test_take_required_missing(self):
        with pytest.raises(SchemaError, match="required field 'name'"):
            take({}, "name", "", SourceInfo(), kind=str, required=True)

    def test_take_coerces_int_to_float(self):
        value = take({"x": 3}, "x", "", SourceInfo(), kind=float)
        assert value == 3.0 and isinstance(value, float)

    def test_take_rejects_bool_as_number(self):
        with pytest.raises(SchemaError, match="expected a number"):
            take({"x": True}, "x", "", SourceInfo(), kind=float)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_take_rejects_non_finite(self, bad):
        with pytest.raises(SchemaError, match="must be finite"):
            take({"x": bad}, "x", "", SourceInfo(), kind=float)

    def test_take_range_checks(self):
        with pytest.raises(SchemaError, match=">= 0"):
            take({"x": -1.0}, "x", "", SourceInfo(), kind=float, minimum=0.0)
        with pytest.raises(SchemaError, match="<= 1"):
            take({"x": 2.0}, "x", "", SourceInfo(), kind=float, maximum=1.0)

    def test_take_choices(self):
        with pytest.raises(SchemaError, match="one of"):
            take(
                {"x": "bad"}, "x", "", SourceInfo(), kind=str,
                choices=("data", "ack"),
            )

    def test_take_none_means_default(self):
        assert take({"x": None}, "x", "", SourceInfo(), default=7) == 7
