"""The equivalence gate: paper presets re-expressed as documents are
byte-identical to the code-built scenarios — same frozen Scenario, same
flow key, same encoded FlowOutcome."""

import pytest

from repro.exec import Executor, FlowSpec
from repro.hsr import (
    CHINA_MOBILE,
    CHINA_TELECOM,
    CHINA_UNICOM,
    driving_scenario,
    hsr_scenario,
    stationary_scenario,
)
from repro.scenarios import compile_scenario
from repro.store import canonical_json, encode_outcome, flow_key

PRESET_PAIRS = [
    ("hsr-china-mobile", lambda: hsr_scenario(CHINA_MOBILE)),
    ("stationary-china-unicom", lambda: stationary_scenario(CHINA_UNICOM)),
    ("driving-china-telecom", lambda: driving_scenario(CHINA_TELECOM)),
]
IDS = [name for name, _ in PRESET_PAIRS]


@pytest.mark.parametrize("ref,factory", PRESET_PAIRS, ids=IDS)
class TestPresetEquivalence:
    def test_compiled_scenario_equals_code_preset(self, ref, factory):
        assert compile_scenario(ref) == factory()

    def test_flow_keys_match(self, ref, factory):
        by_ref = FlowSpec(scenario_ref=ref, duration=10.0, seed=5)
        direct = FlowSpec(scenario=factory(), duration=10.0, seed=5)
        assert flow_key(by_ref) == flow_key(direct)

    def test_flow_outcomes_byte_identical(self, ref, factory):
        specs = [
            FlowSpec(scenario_ref=ref, duration=8.0, seed=17, flow_id="eq"),
            FlowSpec(scenario=factory(), duration=8.0, seed=17, flow_id="eq"),
        ]
        execution = Executor.for_workers(1).run(specs)
        from_document, from_code = execution.outcomes
        assert from_document.ok and from_code.ok
        assert canonical_json(encode_outcome(from_document)) == canonical_json(
            encode_outcome(from_code)
        )
