"""Tests for ``python -m repro.scenarios`` (driven through ``main``)."""

import json

import pytest

from repro.scenarios import document_to_yaml, load_document_text, scenario_names
from repro.scenarios.cli import main

CUSTOM = """\
name: cli-custom
description: CLI fixture
tags: [cli]
mobility:
  peak_speed_kmh: 200
provider: China Mobile
flow_start_offset_s: 60
"""


@pytest.fixture
def custom_file(tmp_path):
    path = tmp_path / "cli-custom.yaml"
    path.write_text(CUSTOM, encoding="utf-8")
    return path


class TestList:
    def test_lists_all_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out
        assert f"{len(scenario_names())} scenario(s)" in out

    def test_json_output(self, capsys):
        assert main(["list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == len(scenario_names())
        row = {entry["name"]: entry for entry in rows}["hsr-china-mobile"]
        assert row["provider"] == "China Mobile"
        assert row["speed_kmh"] == pytest.approx(300.0, abs=1.0)

    def test_tag_filter(self, capsys):
        assert main(["list", "--json", "--tag", "hsr"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows
        assert all("hsr" in row["tags"] for row in rows)


class TestValidate:
    def test_validate_named_scenarios(self, capsys):
        assert main(["validate", "hsr-china-mobile", "driving-china-telecom"]) == 0
        out = capsys.readouterr().out
        assert "2 scenario(s) valid" in out

    def test_validate_file_with_flow(self, custom_file, capsys):
        assert main(
            ["validate", str(custom_file), "--run-flows", "2.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "Mbps" in out

    def test_validate_failure_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text("name: bad\nmobility: {preset: warp}\n", encoding="utf-8")
        assert main(["validate", str(bad)]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "failed validation" in captured.err


class TestShow:
    def test_show_emits_canonical_yaml(self, capsys):
        assert main(["show", "hsr-china-mobile"]) == 0
        out = capsys.readouterr().out
        shown = load_document_text(out)
        assert shown.name == "hsr-china-mobile"
        assert document_to_yaml(shown) == out

    def test_show_file(self, custom_file, capsys):
        assert main(["show", str(custom_file)]) == 0
        assert load_document_text(capsys.readouterr().out).name == "cli-custom"


class TestCompile:
    def test_compile_reports_build_parameters(self, capsys):
        assert main(["compile", "hsr-china-mobile", "--duration", "30"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "hsr/China Mobile"
        assert payload["document_name"] == "hsr-china-mobile"
        assert payload["declarative"] is True
        assert payload["build"]["duration_s"] == 30.0
        assert payload["build"]["wmax"] > 0


class TestErrors:
    def test_unknown_ref_exits_2(self, capsys):
        assert main(["show", "no-such-scenario"]) == 2
        assert "error:" in capsys.readouterr().err
