"""The bundled scenario library: every file parses, compiles, builds."""

import pytest

from repro.scenarios import (
    compile_document,
    get_scenario_document,
    library_paths,
    load_document_file,
    roundtrip_check,
    scenario_names,
)

ALL_DOCUMENTS = [load_document_file(path) for path in library_paths()]


class TestLibraryShape:
    def test_at_least_24_scenarios(self):
        assert len(ALL_DOCUMENTS) >= 24

    def test_names_unique(self):
        names = [document.name for document in ALL_DOCUMENTS]
        assert len(names) == len(set(names))

    def test_file_name_matches_scenario_name(self):
        """Library files are named after the scenario they define."""
        for path, document in zip(library_paths(), ALL_DOCUMENTS):
            assert path.stem == document.name

    def test_all_names_in_registry(self):
        names = set(scenario_names())
        for document in ALL_DOCUMENTS:
            assert document.name in names
            assert get_scenario_document(document.name) == document

    def test_every_document_has_description_and_tags(self):
        for document in ALL_DOCUMENTS:
            assert document.description, document.name
            assert document.tags, document.name


@pytest.mark.parametrize(
    "document", ALL_DOCUMENTS, ids=[d.name for d in ALL_DOCUMENTS]
)
class TestLibraryContents:
    def test_compiles_and_builds(self, document):
        scenario = compile_document(document)
        built = scenario.build(duration=8.0, seed=3)
        assert built.config.duration == 8.0

    def test_compile_deterministic(self, document):
        assert compile_document(document) == compile_document(document)

    def test_serialize_roundtrip(self, document):
        _, reparsed = roundtrip_check(document)
        assert reparsed == document
