"""Round-trip tests for the text forms (satellite: parse → compile →
serialize → parse is idempotent; bad documents fail with key + line)."""

import pytest

from repro.scenarios import (
    SchemaError,
    compile_document,
    document_from_scenario,
    document_to_json,
    document_to_yaml,
    load_document_file,
    load_document_text,
    roundtrip_check,
)

DOCUMENT_TEXT = """\
name: roundtrip
description: serializer inversion fixture
tags: [test]
mobility:
  peak_speed_kmh: 310
  acceleration: 0.45
cells:
  spacing_m: 2200
provider: China Telecom
flow_start_offset_s: 250
faults:
  name: mild
  deep_fade_rate: 0.01
extra_loss:
  - direction: ack
    mean_good_s: 45.0
    mean_bad_s: 0.7
    label: viaduct
"""


class TestRoundTrip:
    def test_yaml_roundtrip_is_identity(self):
        document = load_document_text(DOCUMENT_TEXT)
        text, reparsed = roundtrip_check(document)
        assert reparsed == document
        # and serialization is a fixed point after the first pass
        assert document_to_yaml(reparsed) == text

    def test_json_roundtrip_is_identity(self):
        document = load_document_text(DOCUMENT_TEXT)
        reparsed = load_document_text(document_to_json(document))
        assert reparsed == document

    def test_parse_compile_serialize_parse_compile(self):
        """The satellite contract: the full cycle preserves the scenario."""
        document = load_document_text(DOCUMENT_TEXT)
        scenario = compile_document(document)
        recovered = document_from_scenario(scenario)
        text, reparsed = roundtrip_check(recovered)
        assert compile_document(reparsed) == scenario

    def test_file_roundtrip(self, tmp_path):
        document = load_document_text(DOCUMENT_TEXT)
        path = tmp_path / "roundtrip.yaml"
        path.write_text(document_to_yaml(document), encoding="utf-8")
        assert load_document_file(path) == document


class TestFailureLocation:
    def test_unknown_field_names_key_line_and_file(self, tmp_path):
        bad = DOCUMENT_TEXT.replace("acceleration", "aceleration")
        path = tmp_path / "typo.yaml"
        path.write_text(bad, encoding="utf-8")
        with pytest.raises(SchemaError) as excinfo:
            load_document_file(path)
        error = excinfo.value
        assert "'aceleration'" in str(error)
        assert error.line == 6
        assert error.source == str(path)
        assert "line 6" in str(error)

    def test_nested_unknown_field_line(self):
        bad = DOCUMENT_TEXT.replace("label: viaduct", "labell: viaduct")
        with pytest.raises(SchemaError) as excinfo:
            load_document_text(bad, "nested.yaml")
        assert "'labell'" in str(excinfo.value)
        assert excinfo.value.line == 18
        assert excinfo.value.source == "nested.yaml"
