"""Property-based tests over arbitrary valid scenario documents.

Pins the two pipeline contracts everywhere, not just on the bundled
library: serialize → parse inversion and compile/build determinism.
Example counts are kept modest — each example parses YAML and (for the
build property) runs the channel construction.
"""

from hypothesis import HealthCheck, given, settings

from repro.scenarios import compile_document, document_to_dict, parse_document
from repro.scenarios.fuzz import scenario_documents
from repro.scenarios.serialize import roundtrip_check

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@RELAXED
@given(document=scenario_documents())
def test_serialize_parse_is_identity(document):
    _, reparsed = roundtrip_check(document)
    assert reparsed == document


@RELAXED
@given(document=scenario_documents())
def test_dict_roundtrip_is_identity(document):
    assert parse_document(document_to_dict(document)) == document


@RELAXED
@given(document=scenario_documents())
def test_compile_is_deterministic(document):
    assert compile_document(document) == compile_document(document)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(document=scenario_documents())
def test_build_is_deterministic(document):
    scenario = compile_document(document)
    first = scenario.build(duration=5.0, seed=9)
    second = scenario.build(duration=5.0, seed=9)
    assert first.config == second.config
    assert first.outages == second.outages


@RELAXED
@given(document=scenario_documents())
def test_compiled_scenario_survives_text_cycle(document):
    scenario = compile_document(document)
    _, reparsed = roundtrip_check(document)
    assert compile_document(reparsed) == scenario
