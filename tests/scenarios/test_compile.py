"""Tests for document → Scenario compilation and decompilation."""

import pytest

from repro.hsr import (
    CHINA_MOBILE,
    CHINA_TELECOM,
    HookSpec,
    hsr_scenario,
)
from repro.hsr.mobility import btr_profile
from repro.robustness.faults import FaultPlan
from repro.scenarios import (
    compile_document,
    document_from_scenario,
    load_document_text,
    parse_document,
)
from repro.util.errors import ConfigurationError

BASE = {
    "name": "base",
    "mobility": {"preset": "btr"},
    "provider": "China Mobile",
}


class TestCompileDocument:
    def test_preset_mobility_and_provider(self):
        scenario = compile_document(parse_document(dict(BASE)))
        assert scenario.name == "base"
        assert scenario.mobility == btr_profile()
        assert scenario.provider == CHINA_MOBILE
        assert scenario.channel_hook is None

    def test_compile_is_deterministic(self):
        document = parse_document(dict(BASE))
        assert compile_document(document) == compile_document(document)

    def test_custom_mobility(self):
        data = dict(
            BASE,
            mobility={
                "peak_speed_mps": 40.0,
                "acceleration": 0.8,
                "route_length_m": 30_000,
            },
        )
        scenario = compile_document(parse_document(data))
        assert scenario.mobility.peak_speed == 40.0
        assert scenario.mobility.acceleration == 0.8
        assert scenario.mobility.name == "custom-40mps"

    def test_zero_speed_names_stationary(self):
        data = dict(BASE, mobility={"peak_speed_mps": 0})
        scenario = compile_document(parse_document(data))
        assert scenario.mobility.name == "stationary"
        assert scenario.mobility.peak_speed == 0.0

    def test_inline_provider(self):
        data = dict(
            BASE,
            provider={
                "name": "Inline Net",
                "technology": "3G",
                "one_way_delay_s": 0.06,
                "base_data_loss": 0.005,
                "base_ack_loss": 0.004,
            },
        )
        scenario = compile_document(parse_document(data))
        assert scenario.provider.name == "Inline Net"
        assert scenario.provider.technology == "3G"
        assert scenario.provider.one_way_delay == 0.06

    def test_cells_and_offset(self):
        data = dict(
            BASE,
            cells={"spacing_m": 1800, "offset_m": 400},
            flow_start_offset_s=42.0,
        )
        scenario = compile_document(parse_document(data))
        assert scenario.cells.spacing == 1800.0
        assert scenario.cells.offset == 400.0
        assert scenario.flow_start_offset == 42.0

    def test_faults_become_declarative_hook(self):
        data = dict(
            BASE, faults={"name": "storm", "handoff_storm_rate": 0.05}
        )
        scenario = compile_document(parse_document(data))
        assert isinstance(scenario.channel_hook, HookSpec)
        assert scenario.channel_hook.name == "faults"
        assert scenario.channel_hook.as_dict()["handoff_storm_rate"] == 0.05

    def test_noop_faults_compile_to_no_hook(self):
        data = dict(BASE, faults={"name": "quiet"})
        scenario = compile_document(parse_document(data))
        assert scenario.channel_hook is None

    def test_faults_plus_overlay_chain(self):
        data = dict(
            BASE,
            faults={"name": "storm", "deep_fade_rate": 0.01},
            extra_loss=[
                {"direction": "ack", "mean_good_s": 30.0, "mean_bad_s": 1.0}
            ],
        )
        scenario = compile_document(parse_document(data))
        assert scenario.channel_hook.name == "chain"
        chained = scenario.channel_hook.as_dict()["hooks"]
        assert [spec.name for spec in chained] == ["faults", "extra_loss"]

    def test_scenario_name_overrides_rng_label(self):
        data = dict(BASE, scenario_name="hsr/China Mobile")
        scenario = compile_document(parse_document(data))
        assert scenario.name == "hsr/China Mobile"

    def test_preset_document_equals_code_preset(self):
        text = """
name: preset-check
mobility: {preset: btr}
provider: China Mobile
scenario_name: hsr/China Mobile
"""
        scenario = compile_document(load_document_text(text))
        assert scenario == hsr_scenario(CHINA_MOBILE)


class TestDocumentFromScenario:
    def test_roundtrip_identity_presets(self):
        scenario = hsr_scenario(CHINA_TELECOM)
        document = document_from_scenario(scenario)
        assert compile_document(document) == scenario

    def test_roundtrip_identity_with_hooks(self):
        data = dict(
            BASE,
            faults={"name": "storm", "ack_blackout_rate": 0.03},
            extra_loss=[
                {"direction": "data", "mean_good_s": 15.0, "mean_bad_s": 0.8}
            ],
        )
        document = parse_document(data)
        scenario = compile_document(document)
        recovered = document_from_scenario(scenario)
        assert compile_document(recovered) == scenario
        assert recovered.faults == document.faults
        assert recovered.extra_loss == document.extra_loss

    def test_renaming_preserves_rng_label(self):
        scenario = hsr_scenario(CHINA_MOBILE)
        document = document_from_scenario(scenario, name="friendly-name")
        assert document.name == "friendly-name"
        assert document.scenario_name == scenario.name
        assert compile_document(document) == scenario

    def test_opaque_hook_rejected(self):
        scenario = hsr_scenario(CHINA_MOBILE)
        opaque = type(scenario)(
            name=scenario.name,
            mobility=scenario.mobility,
            provider=scenario.provider,
            cells=scenario.cells,
            flow_start_offset=scenario.flow_start_offset,
            channel_hook=lambda built, seed: built,
        )
        with pytest.raises(ConfigurationError, match="opaque"):
            document_from_scenario(opaque)

    def test_unknown_hook_name_rejected(self):
        plan_hook = HookSpec.make("faults", **_plan_params())
        unknown = HookSpec(name="mystery", params=())
        scenario = hsr_scenario(CHINA_MOBILE)
        bad = type(scenario)(
            name=scenario.name,
            mobility=scenario.mobility,
            provider=scenario.provider,
            cells=scenario.cells,
            flow_start_offset=scenario.flow_start_offset,
            channel_hook=unknown,
        )
        with pytest.raises(ConfigurationError, match="mystery"):
            document_from_scenario(bad)
        # the declarative fault hook, by contrast, decompiles fine
        good = type(scenario)(
            name=scenario.name,
            mobility=scenario.mobility,
            provider=scenario.provider,
            cells=scenario.cells,
            flow_start_offset=scenario.flow_start_offset,
            channel_hook=plan_hook,
        )
        assert document_from_scenario(good).faults == FaultPlan(**_plan_params())


def _plan_params():
    return {"name": "storm", "handoff_storm_rate": 0.04}
