"""Tests for the Fig-4 scatter machinery and measured model inputs."""

import pytest

from repro.core.params import LinkParams
from repro.hsr import hsr_scenario
from repro.simulator import ConnectionConfig, NoLoss, TraceDrivenLoss, run_flow
from repro.traces.capture import capture_flow
from repro.traces.correlation import (
    ScatterPoint,
    measured_model_inputs,
    scatter_correlation,
    scatter_envelope,
    timeout_ack_scatter,
)
from repro.traces.events import FlowMetadata


def make_trace(data_loss=None, ack_loss=None, duration=20.0, flow_id="t/0", seed=9):
    result = run_flow(
        ConnectionConfig(duration=duration),
        data_loss or NoLoss(),
        ack_loss or NoLoss(),
        seed=seed,
    )
    meta = FlowMetadata(
        flow_id=flow_id, provider="China Mobile", technology="LTE",
        scenario="hsr", capture_month="2015-01", phone_model="Samsung Note 3",
        duration=duration, seed=seed,
    )
    return capture_flow(result, meta)


def hsr_trace(seed, duration=60.0):
    scenario = hsr_scenario()
    built = scenario.build(duration=duration, seed=seed)
    result = run_flow(built.config, built.data_loss, built.ack_loss, seed=seed)
    meta = FlowMetadata(
        flow_id=f"hsr/{seed}", provider="China Mobile", technology="LTE",
        scenario="hsr", capture_month="2015-10", phone_model="Samsung Note 3",
        duration=duration, seed=seed,
    )
    return capture_flow(result, meta)


class TestScatter:
    def test_quiet_flow_excluded(self):
        points = timeout_ack_scatter([make_trace()])
        assert points == []

    def test_one_point_per_lossy_flow(self):
        traces = [hsr_trace(seed) for seed in (1, 2, 3)]
        points = timeout_ack_scatter(traces)
        assert len(points) == 3
        assert {point.flow_id for point in points} == {t.metadata.flow_id for t in traces}

    def test_probabilities_in_unit_interval(self):
        points = timeout_ack_scatter([hsr_trace(seed) for seed in range(4)])
        for point in points:
            assert 0.0 <= point.timeout_probability <= 1.0
            assert 0.0 <= point.ack_loss_rate < 1.0


class TestEnvelope:
    def _points(self):
        return [
            ScatterPoint("a", 0.01, 0.2),
            ScatterPoint("b", 0.02, 0.4),
            ScatterPoint("c", 0.03, 0.5),
            ScatterPoint("d", 0.04, 0.9),
        ]

    def test_envelope_contains_all_points(self):
        points = self._points()
        (slope_lo, int_lo), (slope_hi, int_hi) = scatter_envelope(points)
        for point in points:
            low = slope_lo * point.ack_loss_rate + int_lo
            high = slope_hi * point.ack_loss_rate + int_hi
            assert low - 1e-9 <= point.timeout_probability <= high + 1e-9

    def test_positive_slope_for_positive_trend(self):
        (slope_lo, _), (slope_hi, _) = scatter_envelope(self._points())
        assert slope_lo > 0.0
        assert slope_lo == pytest.approx(slope_hi)  # parallel envelope lines

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            scatter_envelope([ScatterPoint("a", 0.1, 0.2)])

    def test_correlation_positive_on_trend(self):
        assert scatter_correlation(self._points()) > 0.8


class TestMeasuredInputs:
    def test_extracts_valid_params(self):
        inputs = measured_model_inputs(hsr_trace(seed=3))
        assert inputs is not None
        assert isinstance(inputs.params, LinkParams)
        assert inputs.params.rtt > 0.0
        assert inputs.throughput > 0.0
        assert 0.0 <= inputs.ack_burst_probability < 1.0

    def test_quiet_flow_uses_recommended_q(self):
        inputs = measured_model_inputs(make_trace())
        assert inputs is not None
        assert inputs.params.recovery_loss == pytest.approx(0.325)

    def test_timeout_override(self):
        inputs = measured_model_inputs(hsr_trace(seed=4), timeout_value=2.0)
        assert inputs.params.timeout == 2.0

    def test_dead_trace_returns_none(self):
        trace = make_trace()
        trace.acks = []
        trace.delivered_payloads = 0
        assert measured_model_inputs(trace) is None

    def test_spurious_heavy_flow_measures_positive_burst(self):
        trace = make_trace(ack_loss=TraceDrivenLoss(range(10, 18)))
        inputs = measured_model_inputs(trace)
        assert inputs.ack_burst_probability > 0.0
