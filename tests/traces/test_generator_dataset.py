"""Tests for the Table-I campaign generator and serialisation."""

import pytest

from repro.traces.dataset import (
    dataset_records,
    records_from_json,
    records_to_json,
    table1_rows,
)
from repro.traces.generator import (
    PAPER_CAMPAIGN,
    generate_dataset,
    generate_stationary_reference,
)
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def small_dataset():
    return generate_dataset(seed=7, duration=30.0, flow_scale=0.03)


@pytest.fixture(scope="module")
def stationary_dataset():
    return generate_stationary_reference(seed=8, duration=30.0, flows_per_provider=2)


class TestPaperCampaign:
    def test_matches_table1_structure(self):
        assert len(PAPER_CAMPAIGN) == 4
        assert sum(entry.flows for entry in PAPER_CAMPAIGN) == 255  # 52+73+65+65

    def test_months_and_trips(self):
        january = [e for e in PAPER_CAMPAIGN if e.capture_month == "2015-01"]
        october = [e for e in PAPER_CAMPAIGN if e.capture_month == "2015-10"]
        assert len(january) == 1 and january[0].trips == 8
        assert len(october) == 3 and all(e.trips == 24 for e in october)


class TestGenerateDataset:
    def test_flow_scale_shrinks_campaign(self, small_dataset):
        assert 4 <= small_dataset.flow_count <= 16

    def test_every_cell_represented(self, small_dataset):
        providers = {trace.metadata.provider for trace in small_dataset.traces}
        assert providers == {"China Mobile", "China Unicom", "China Telecom"}

    def test_traces_are_hsr(self, small_dataset):
        assert all(t.metadata.scenario == "hsr" for t in small_dataset.traces)

    def test_flows_delivered_data(self, small_dataset):
        assert all(t.delivered_payloads > 0 for t in small_dataset.traces)
        assert small_dataset.total_bytes > 0

    def test_unique_flow_ids(self, small_dataset):
        ids = [t.metadata.flow_id for t in small_dataset.traces]
        assert len(ids) == len(set(ids))

    def test_deterministic(self):
        a = generate_dataset(seed=7, duration=10.0, flow_scale=0.01)
        b = generate_dataset(seed=7, duration=10.0, flow_scale=0.01)
        assert [t.delivered_payloads for t in a.traces] == [
            t.delivered_payloads for t in b.traces
        ]

    def test_by_provider_filter(self, small_dataset):
        mobile = small_dataset.by_provider("China Mobile")
        assert mobile
        assert all(t.metadata.provider == "China Mobile" for t in mobile)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            generate_dataset(duration=0.0)
        with pytest.raises(ConfigurationError):
            generate_dataset(flow_scale=0.0)


class TestStationaryReference:
    def test_scenario_label(self, stationary_dataset):
        assert all(
            t.metadata.scenario == "stationary" for t in stationary_dataset.traces
        )

    def test_flow_count(self, stationary_dataset):
        assert stationary_dataset.flow_count == 6

    def test_cleaner_than_hsr(self, small_dataset, stationary_dataset):
        hsr_ack = sum(t.ack_loss_rate for t in small_dataset.traces) / small_dataset.flow_count
        st_ack = sum(t.ack_loss_rate for t in stationary_dataset.traces) / stationary_dataset.flow_count
        assert st_ack < hsr_ack


class TestTable1Rows:
    def test_one_row_per_entry(self, small_dataset):
        rows = table1_rows(small_dataset)
        assert len(rows) == 4

    def test_row_flow_counts_sum(self, small_dataset):
        rows = table1_rows(small_dataset)
        assert sum(row.flows for row in rows) == small_dataset.flow_count

    def test_sizes_positive(self, small_dataset):
        for row in table1_rows(small_dataset):
            assert row.trace_size_gb > 0.0


class TestSerialisation:
    def test_roundtrip(self, small_dataset):
        records = dataset_records(small_dataset.traces)
        payload = records_to_json(records)
        restored = records_from_json(payload)
        assert restored == records

    def test_records_carry_statistics(self, small_dataset):
        records = dataset_records(small_dataset.traces)
        assert all(record.throughput > 0.0 for record in records)
        assert all(record.rtt is not None for record in records)

    def test_bad_json_rejected(self):
        with pytest.raises(ValueError):
            records_from_json('{"not": "a list"}')
