"""Tests for CSV export and the campaign text report."""

import csv
import io

import pytest

from repro.simulator import ConnectionConfig, NoLoss, TraceDrivenLoss, run_flow
from repro.traces.capture import capture_flow
from repro.traces.events import FlowMetadata
from repro.traces.export import (
    campaign_report,
    open_csv,
    write_cwnd_csv,
    write_flow_summary_csv,
    write_latency_csv,
)


@pytest.fixture(scope="module")
def trace_and_result():
    result = run_flow(
        ConnectionConfig(duration=10.0),
        TraceDrivenLoss([20]),
        NoLoss(),
        seed=3,
    )
    meta = FlowMetadata(
        flow_id="exp/0", provider="China Mobile", technology="LTE",
        scenario="hsr", capture_month="2015-10", phone_model="Samsung Note 3",
        duration=10.0, seed=3,
    )
    return capture_flow(result, meta), result


class TestLatencyCsv:
    def test_header_and_rows(self, trace_and_result):
        trace, _ = trace_and_result
        text = write_latency_csv(trace)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["send_time_s", "latency_s", "direction", "lost"]
        assert len(rows) > 100

    def test_lost_row_marked(self, trace_and_result):
        trace, _ = trace_and_result
        rows = list(csv.DictReader(io.StringIO(write_latency_csv(trace))))
        lost = [row for row in rows if row["lost"] == "1"]
        assert len(lost) == 1
        assert float(lost[0]["latency_s"]) == -1.0

    def test_stream_write(self, trace_and_result):
        trace, _ = trace_and_result
        stream = io.StringIO()
        text = write_latency_csv(trace, stream)
        assert stream.getvalue() == text


class TestCwndCsv:
    def test_round_trip(self, trace_and_result):
        _, result = trace_and_result
        text = write_cwnd_csv(result.log.cwnd_samples)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(result.log.cwnd_samples)
        assert {row["phase"] for row in rows} >= {"slow_start"}

    def test_values_parse(self, trace_and_result):
        _, result = trace_and_result
        rows = list(csv.DictReader(io.StringIO(write_cwnd_csv(result.log.cwnd_samples))))
        assert all(float(row["cwnd_packets"]) >= 1.0 for row in rows)


class TestSummaryCsv:
    def test_one_row_per_flow(self, trace_and_result):
        trace, _ = trace_and_result
        rows = list(csv.DictReader(io.StringIO(write_flow_summary_csv([trace, trace]))))
        assert len(rows) == 2
        assert rows[0]["provider"] == "China Mobile"

    def test_statistics_present(self, trace_and_result):
        trace, _ = trace_and_result
        row = list(csv.DictReader(io.StringIO(write_flow_summary_csv([trace]))))[0]
        assert float(row["throughput_pps"]) > 0.0
        assert float(row["data_loss"]) > 0.0


class TestNewlineDiscipline:
    """Every exporter shares one CSV dialect: plain LF, no CR anywhere."""

    def test_no_carriage_returns_in_any_writer(self, trace_and_result):
        trace, result = trace_and_result
        for text in (
            write_latency_csv(trace),
            write_cwnd_csv(result.log.cwnd_samples),
            write_flow_summary_csv([trace]),
        ):
            assert "\r" not in text
            assert text.endswith("\n")

    def test_open_csv_file_round_trip(self, trace_and_result, tmp_path):
        trace, _ = trace_and_result
        path = tmp_path / "summary.csv"
        with open_csv(path) as stream:
            text = write_flow_summary_csv([trace], stream)
        # Bytes on disk are exactly the in-memory text — ``newline=""``
        # stops any platform translation from reintroducing CRLF.
        assert path.read_bytes() == text.encode("utf-8")
        assert b"\r" not in path.read_bytes()
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["flow_id"] == "exp/0"


class TestCampaignReport:
    def test_report_contains_sections(self, trace_and_result):
        trace, _ = trace_and_result
        report = campaign_report([trace], title="Test campaign")
        assert "Test campaign" in report
        assert "[hsr]" in report
        assert "throughput" in report
        assert "data loss rate" in report

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            campaign_report([])
