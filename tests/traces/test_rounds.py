"""Tests for round segmentation and the direct P_a estimator."""

import pytest

from repro.simulator import ConnectionConfig, NoLoss, run_flow
from repro.simulator.channel import HandoffLoss
from repro.simulator.metrics import AckRecord
from repro.traces.capture import capture_flow
from repro.traces.events import FlowMetadata
from repro.traces.rounds import (
    measured_ack_burst_rate,
    segment_ack_rounds,
)
from repro.util.rng import RngStream


def ack(send_time, lost=False, tid=0):
    return AckRecord(
        transmission_id=tid, ack_seq=0, send_time=send_time,
        arrival_time=None if lost else send_time + 0.03,
        dropped=lost,
    )


class TestSegmentation:
    def test_empty(self):
        assert segment_ack_rounds([], rtt=0.1) == []

    def test_single_burst_is_one_round(self):
        acks = [ack(1.0), ack(1.01), ack(1.02)]
        rounds = segment_ack_rounds(acks, rtt=0.1)
        assert len(rounds) == 1
        assert rounds[0].acks == 3
        assert rounds[0].lost == 0

    def test_gap_splits_rounds(self):
        acks = [ack(1.0), ack(1.01), ack(1.2), ack(1.21)]
        rounds = segment_ack_rounds(acks, rtt=0.1)
        assert len(rounds) == 2
        assert [r.acks for r in rounds] == [2, 2]

    def test_all_lost_round_detected(self):
        acks = [ack(1.0), ack(1.01), ack(1.2, lost=True), ack(1.21, lost=True)]
        rounds = segment_ack_rounds(acks, rtt=0.1)
        assert not rounds[0].all_lost
        assert rounds[1].all_lost

    def test_partially_lost_round_not_burst(self):
        acks = [ack(1.0, lost=True), ack(1.01)]
        rounds = segment_ack_rounds(acks, rtt=0.1)
        assert len(rounds) == 1
        assert not rounds[0].all_lost

    def test_rejects_bad_rtt(self):
        with pytest.raises(ValueError):
            segment_ack_rounds([ack(1.0)], rtt=0.0)


class TestMeasuredBurstRate:
    def _trace(self, ack_loss=None, duration=20.0):
        result = run_flow(
            ConnectionConfig(duration=duration, forward_delay=0.05,
                             reverse_delay=0.05, min_rto=0.5),
            NoLoss(),
            ack_loss or NoLoss(),
            seed=4,
        )
        meta = FlowMetadata(
            flow_id="r/0", provider="China Mobile", technology="LTE",
            scenario="hsr", capture_month="2015-10", phone_model="p",
            duration=duration, seed=4,
        )
        return capture_flow(result, meta)

    def test_clean_flow_zero_burst_rate(self):
        assert measured_ack_burst_rate(self._trace()) == 0.0

    def test_ack_outage_produces_positive_rate(self):
        trace = self._trace(
            ack_loss=HandoffLoss(RngStream(1, "x"), [(5.0, 6.5)], loss_during=1.0)
        )
        rate = measured_ack_burst_rate(trace)
        assert rate is not None
        assert rate > 0.0

    def test_no_acks_returns_none(self):
        trace = self._trace()
        trace.acks = []
        assert measured_ack_burst_rate(trace, rtt=0.1) is None

    def test_explicit_rtt_used(self):
        trace = self._trace()
        assert measured_ack_burst_rate(trace, rtt=0.12) == 0.0
