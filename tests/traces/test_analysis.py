"""Tests for per-flow analysis (Fig-1 series, RTT estimation, summaries)."""

import pytest

from repro.simulator import ConnectionConfig, NoLoss, TraceDrivenLoss, run_flow
from repro.traces.analysis import (
    LOST_MARKER,
    arrival_latency_series,
    estimate_rtt,
    flow_summary,
)
from repro.traces.capture import capture_flow
from repro.traces.events import FlowMetadata


def make_trace(data_loss=None, ack_loss=None, duration=10.0, **config):
    result = run_flow(
        ConnectionConfig(duration=duration, **config),
        data_loss or NoLoss(),
        ack_loss or NoLoss(),
        seed=5,
    )
    meta = FlowMetadata(
        flow_id="t/0", provider="China Mobile", technology="LTE",
        scenario="hsr", capture_month="2015-01", phone_model="Samsung Note 3",
        duration=duration, seed=5,
    )
    return capture_flow(result, meta)


class TestArrivalLatencySeries:
    def test_covers_both_directions(self):
        points = arrival_latency_series(make_trace())
        directions = {point.direction for point in points}
        assert directions == {"data", "ack"}

    def test_sorted_by_send_time(self):
        points = arrival_latency_series(make_trace())
        times = [point.send_time for point in points]
        assert times == sorted(times)

    def test_clean_channel_latency_near_delay(self):
        points = arrival_latency_series(make_trace())
        for point in points:
            assert not point.lost
            assert 0.02 <= point.latency <= 0.2

    def test_lost_packets_marked_minus_one(self):
        points = arrival_latency_series(make_trace(data_loss=TraceDrivenLoss([5])))
        lost = [point for point in points if point.lost]
        assert len(lost) == 1
        assert lost[0].latency == LOST_MARKER
        assert lost[0].direction == "data"

    def test_point_count_matches_resolved_transmissions(self):
        trace = make_trace()
        points = arrival_latency_series(trace)
        resolved = [
            r for r in trace.data_packets + trace.acks
            if r.lost or r.latency is not None
        ]
        assert len(points) == len(resolved)
        # in-flight-at-horizon rows are excluded
        assert len(points) <= len(trace.data_packets) + len(trace.acks)


class TestEstimateRtt:
    def test_clean_channel_rtt_near_configured(self):
        trace = make_trace(forward_delay=0.04, reverse_delay=0.04)
        rtt = estimate_rtt(trace)
        # Base 0.08 plus delayed-ACK waiting; must land in a sane band.
        assert 0.08 <= rtt <= 0.2

    def test_rtt_grows_with_link_delay(self):
        fast = estimate_rtt(make_trace(forward_delay=0.01, reverse_delay=0.01))
        slow = estimate_rtt(make_trace(forward_delay=0.08, reverse_delay=0.08))
        assert slow > fast

    def test_empty_trace_returns_none(self):
        trace = make_trace()
        trace.acks = []
        assert estimate_rtt(trace) is None

    def test_survives_lossy_trace(self):
        trace = make_trace(data_loss=TraceDrivenLoss(range(20, 40)))
        assert estimate_rtt(trace) is not None


class TestFlowSummary:
    def test_summary_fields(self):
        trace = make_trace()
        summary = flow_summary(trace)
        assert summary.flow_id == "t/0"
        assert summary.provider == "China Mobile"
        assert summary.throughput == pytest.approx(trace.throughput)
        assert summary.timeouts == len(trace.timeouts)
        assert summary.transferred_bytes == trace.transferred_bytes

    def test_clean_flow_has_no_timeouts(self):
        summary = flow_summary(make_trace())
        assert summary.timeouts == 0
        assert summary.recovery_phases == 0
        assert summary.duplicate_payloads == 0
