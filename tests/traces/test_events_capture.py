"""Tests for FlowTrace containers and the simulator->trace adapter."""

import pytest

from repro.simulator import ConnectionConfig, NoLoss, TraceDrivenLoss, run_flow
from repro.traces.capture import capture_flow
from repro.traces.events import FlowMetadata, FlowTrace


def metadata(**overrides) -> FlowMetadata:
    base = dict(
        flow_id="t/0", provider="China Mobile", technology="LTE",
        scenario="hsr", capture_month="2015-01", phone_model="Samsung Note 3",
        duration=10.0, seed=1,
    )
    base.update(overrides)
    return FlowMetadata(**base)


def simulate(data_loss=None, ack_loss=None, duration=10.0, **config):
    result = run_flow(
        ConnectionConfig(duration=duration, **config),
        data_loss or NoLoss(),
        ack_loss or NoLoss(),
        seed=3,
    )
    return capture_flow(result, metadata(duration=duration))


class TestCapture:
    def test_metadata_attached(self):
        trace = simulate()
        assert trace.metadata.provider == "China Mobile"

    def test_records_shared_with_log(self):
        result = run_flow(ConnectionConfig(duration=5.0), NoLoss(), NoLoss())
        trace = capture_flow(result, metadata(duration=5.0))
        assert trace.data_packets is result.log.data_packets
        assert trace.delivered_payloads == result.log.delivered_payloads


class TestDerivedStats:
    def test_throughput(self):
        trace = simulate(duration=10.0)
        assert trace.throughput == pytest.approx(trace.delivered_payloads / 10.0)

    def test_transferred_bytes(self):
        trace = simulate()
        assert trace.transferred_bytes == trace.delivered_payloads * 1460

    def test_loss_rates_zero_on_clean_channel(self):
        trace = simulate()
        assert trace.data_loss_rate == 0.0
        assert trace.ack_loss_rate == 0.0

    def test_data_loss_rate_counts_drops(self):
        trace = simulate(data_loss=TraceDrivenLoss([10, 11, 12]))
        assert trace.data_loss_rate == pytest.approx(3 / len(trace.data_packets))

    def test_loss_event_rate_merges_runs(self):
        # Transmissions 10..12 lost consecutively: one loss event.
        trace = simulate(data_loss=TraceDrivenLoss([10, 11, 12]))
        events = trace.data_loss_event_rate * len(trace.data_packets)
        assert events == pytest.approx(1.0)

    def test_loss_event_rate_counts_separate_runs(self):
        trace = simulate(data_loss=TraceDrivenLoss([10, 50, 90]))
        events = trace.data_loss_event_rate * len(trace.data_packets)
        assert events == pytest.approx(3.0)

    def test_loss_event_rate_le_loss_rate(self):
        trace = simulate(data_loss=TraceDrivenLoss(range(10, 30)))
        assert trace.data_loss_event_rate <= trace.data_loss_rate

    def test_arrivals_by_seq_sorted(self):
        trace = simulate()
        arrivals = trace.arrivals_by_seq()
        assert arrivals
        for times in arrivals.values():
            assert times == sorted(times)

    def test_empty_trace_rates(self):
        trace = FlowTrace(metadata=metadata())
        assert trace.data_loss_rate == 0.0
        assert trace.ack_loss_rate == 0.0
        assert trace.data_loss_event_rate == 0.0
