"""Tests for timeout classification and recovery analysis (paper §III-B)."""

import pytest

from repro.simulator import ConnectionConfig, NoLoss, TraceDrivenLoss, run_flow
from repro.traces.capture import capture_flow
from repro.traces.events import FlowMetadata
from repro.traces.timeouts import (
    classify_timeouts,
    loss_rate_pair,
    recovery_stats,
    spurious_fraction,
    timeout_sequence_lengths,
)


def make_trace(data_loss=None, ack_loss=None, duration=20.0, **config):
    result = run_flow(
        ConnectionConfig(duration=duration, **config),
        data_loss or NoLoss(),
        ack_loss or NoLoss(),
        seed=9,
    )
    meta = FlowMetadata(
        flow_id="t/0", provider="China Mobile", technology="LTE",
        scenario="hsr", capture_month="2015-01", phone_model="Samsung Note 3",
        duration=duration, seed=9,
    )
    return capture_flow(result, meta)


class TestClassification:
    def test_clean_flow_has_no_timeouts(self):
        assert classify_timeouts(make_trace()) == []
        assert spurious_fraction(make_trace()) is None

    def test_pure_ack_loss_timeouts_are_spurious(self):
        # All data arrives; a long ACK outage forces timeouts.
        trace = make_trace(ack_loss=TraceDrivenLoss(range(10, 18)))
        classified = classify_timeouts(trace)
        assert classified
        assert all(c.spurious for c in classified)
        assert spurious_fraction(trace) == 1.0

    def test_pure_data_loss_timeouts_are_genuine(self):
        # A long data outage: the sender's window and retransmissions die.
        trace = make_trace(data_loss=TraceDrivenLoss(range(20, 36)), duration=40.0)
        classified = classify_timeouts(trace)
        assert classified
        assert not any(c.spurious for c in classified)
        assert spurious_fraction(trace) == 0.0

    def test_one_verdict_per_timeout(self):
        trace = make_trace(data_loss=TraceDrivenLoss(range(20, 36)), duration=40.0)
        assert len(classify_timeouts(trace)) == len(trace.timeouts)


class TestRecoveryStats:
    def test_clean_flow_empty_stats(self):
        stats = recovery_stats(make_trace())
        assert stats.phase_count == 0
        assert stats.mean_duration is None
        assert stats.recovery_loss_rate is None

    def test_data_outage_recovery_counted(self):
        trace = make_trace(data_loss=TraceDrivenLoss(range(20, 36)), duration=60.0)
        stats = recovery_stats(trace)
        assert stats.phase_count >= 1
        assert stats.mean_duration > 0.5
        assert stats.retransmissions >= 2
        assert 0.0 < stats.recovery_loss_rate < 1.0
        assert stats.mean_timeouts_per_sequence >= 2.0

    def test_max_at_least_mean(self):
        trace = make_trace(data_loss=TraceDrivenLoss(range(20, 36)), duration=60.0)
        stats = recovery_stats(trace)
        assert stats.max_duration >= stats.mean_duration


class TestAggregates:
    def test_loss_rate_pair_shape(self):
        trace = make_trace(data_loss=TraceDrivenLoss(range(20, 36)), duration=60.0)
        lifetime, recovery = loss_rate_pair(trace)
        assert 0.0 < lifetime < 1.0
        # During the outage the retransmission loss rate dwarfs the
        # lifetime rate — the Fig. 3 contrast.
        assert recovery > lifetime

    def test_timeout_sequence_lengths(self):
        traces = [
            make_trace(data_loss=TraceDrivenLoss(range(20, 36)), duration=60.0),
            make_trace(),
        ]
        lengths = timeout_sequence_lengths(traces)
        assert lengths
        assert all(length >= 1 for length in lengths)
