"""Tests for the ``python -m repro.cc`` mini-CLI."""

import json
import subprocess
import sys

import pytest

from repro.cc import cc_names
from repro.cc.cli import main


class TestList:
    def test_lists_every_registered_variant(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in cc_names():
            assert name in out

    def test_json_output_parses(self, capsys):
        assert main(["list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["name"] for row in rows} == set(cc_names())
        for row in rows:
            assert {"name", "family", "params", "summary", "docs"} <= set(row)

    def test_family_filter(self, capsys):
        assert main(["list", "--json", "--family", "rate-based"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["name"] for row in rows] == ["bbr"]


class TestShow:
    def test_show_prints_params_defaults(self, capsys):
        assert main(["show", "cubic"]) == 0
        out = capsys.readouterr().out
        assert "CubicParams" in out
        assert "beta" in out and "0.7" in out
        assert "RFC 8312" in out

    def test_show_json(self, capsys):
        assert main(["show", "bbr", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "bbr"
        assert payload["family"] == "rate-based"
        fields = {f["name"] for f in payload["params_fields"]}
        assert "startup_gain" in fields and "pacing_quantum" in fields

    def test_paramless_variant(self, capsys):
        assert main(["show", "reno"]) == 0
        assert "params:  none" in capsys.readouterr().out

    def test_unknown_name_exits_2(self, capsys):
        assert main(["show", "vegas"]) == 2
        assert "error:" in capsys.readouterr().err


class TestModuleEntry:
    def test_python_dash_m_works(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cc", "list"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "reno" in proc.stdout

    def test_unknown_subcommand_usage_error(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cc", "frobnicate"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2
