"""cc_params through the pipeline: FlowSpec -> executor -> store keys."""

import pytest

from repro.cc import BbrParams, CubicParams, RelentlessParams
from repro.exec import FlowSpec, simulate_spec
from repro.simulator import ConnectionConfig
from repro.store.keys import flow_key
from repro.util.errors import ConfigurationError


def _spec(**kwargs):
    base = dict(config=ConnectionConfig(duration=4.0), seed=11)
    base.update(kwargs)
    return FlowSpec(**base)


class TestSpecValidation:
    def test_non_dataclass_params_rejected(self):
        with pytest.raises(ConfigurationError, match="cc_params"):
            _spec(cc="cubic", cc_params={"beta": 0.5})

    def test_dataclass_params_accepted(self):
        spec = _spec(cc="cubic", cc_params=CubicParams(beta=0.5))
        assert spec.cc_params.beta == 0.5

    def test_with_replaces_params(self):
        spec = _spec(cc="cubic", cc_params=CubicParams(beta=0.5))
        changed = spec.with_(cc_params=CubicParams(beta=0.6))
        assert changed.cc_params.beta == 0.6


class TestContentKeys:
    def test_params_are_hashed_into_the_key(self):
        plain = _spec(cc="cubic")
        tuned = _spec(cc="cubic", cc_params=CubicParams(beta=0.5))
        assert flow_key(plain) != flow_key(tuned)

    def test_same_params_same_key(self):
        a = _spec(cc="bbr", cc_params=BbrParams(cwnd_gain=1.5))
        b = _spec(cc="bbr", cc_params=BbrParams(cwnd_gain=1.5))
        assert flow_key(a) == flow_key(b)

    def test_cc_name_is_hashed(self):
        assert flow_key(_spec(cc="reno")) != flow_key(_spec(cc="cubic"))


class TestExecution:
    def test_tuned_flow_differs_from_default(self):
        spec = _spec(
            cc="relentless",
            cc_params=RelentlessParams(decrement=2.0),
            duration=None,
        )
        result, _ = simulate_spec(spec)
        assert result.throughput > 0.0

    def test_wrong_variant_params_fail_at_execution(self):
        spec = _spec(cc="reno", cc_params=CubicParams())
        with pytest.raises(ConfigurationError, match="no cc_params"):
            simulate_spec(spec)
