"""Tests for the public repro.cc registry: CCInfo, describe_cc, params."""

import dataclasses
import warnings

import pytest

from repro.cc import (
    BbrParams,
    CC_FAMILIES,
    CC_REGISTRY_VERSION,
    CCInfo,
    CompoundParams,
    CubicParams,
    RelentlessParams,
    cc_infos,
    cc_names,
    describe_cc,
    get_cc,
    make_sender,
    register_cc,
    unregister_cc,
)
from repro.util.errors import ConfigurationError


class TestRegistryVersion:
    def test_bumped_for_the_zoo(self):
        # The zoo changed what a cc name can mean; cached flow results
        # keyed under version 1 must not be served.
        assert CC_REGISTRY_VERSION == 2


class TestCcInfos:
    def test_registration_order_not_alphabetical(self):
        names = [info.name for info in cc_infos()]
        assert names[:2] == ["reno", "newreno"]  # the paper's variants first
        assert set(names) == set(cc_names())

    def test_cc_names_stays_sorted(self):
        assert list(cc_names()) == sorted(cc_names())

    def test_every_builtin_has_metadata(self):
        for info in cc_infos():
            assert info.family in CC_FAMILIES
            assert info.summary
            assert info.docs
            assert callable(info.factory)

    def test_families_cover_the_zoo(self):
        families = {info.name: info.family for info in cc_infos()}
        assert families["reno"] == "loss-based"
        assert families["cubic"] == "loss-based"
        assert families["compound"] == "delay-based"
        assert families["bbr"] == "rate-based"

    def test_params_types_attached(self):
        assert describe_cc("cubic").params_type is CubicParams
        assert describe_cc("bbr").params_type is BbrParams
        assert describe_cc("compound").params_type is CompoundParams
        assert describe_cc("relentless").params_type is RelentlessParams
        assert describe_cc("reno").params_type is None


class TestDescribeCc:
    def test_returns_the_registered_record(self):
        info = describe_cc("cubic")
        assert isinstance(info, CCInfo)
        assert info.name == "cubic"
        assert get_cc("cubic") is info.factory

    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigurationError, match="newreno"):
            describe_cc("vegas")


class TestRegisterWithInfo:
    def test_ccinfo_form_round_trips(self):
        info = CCInfo(
            name="test-info",
            factory=object,
            family="rate-based",
            summary="registration test",
        )
        registered = register_cc(info)
        try:
            assert registered is info
            assert describe_cc("test-info") is info
            assert cc_infos()[-1] is info
        finally:
            unregister_cc("test-info")

    def test_legacy_two_arg_form_synthesises_info(self):
        register_cc("test-legacy", object)
        try:
            info = describe_cc("test-legacy")
            assert info.factory is object
            assert info.family == "loss-based"  # the default
        finally:
            unregister_cc("test-legacy")

    def test_info_validation(self):
        with pytest.raises(ConfigurationError, match="family"):
            CCInfo(name="x", factory=object, family="psychic")
        with pytest.raises(ConfigurationError, match="not callable"):
            CCInfo(name="x", factory=42)
        with pytest.raises(ConfigurationError):
            CCInfo(name="", factory=object)

    def test_factory_error_names_the_protocol(self):
        # The constructor-protocol contract lives on BaseSender; the
        # registry's error must point readers there.
        with pytest.raises(ConfigurationError, match="BaseSender"):
            CCInfo(name="x", factory=7)


class TestParamsValidation:
    def test_frozen_and_keyword_only(self):
        params = CubicParams(beta=0.5)
        with pytest.raises(dataclasses.FrozenInstanceError):
            params.beta = 0.9
        with pytest.raises(TypeError):
            CubicParams(0.4)  # positional forbidden

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: CubicParams(beta=1.5),
            lambda: CubicParams(c=-1.0),
            lambda: BbrParams(startup_gain=0.5),
            lambda: BbrParams(pacing_quantum=0),
            lambda: CompoundParams(alpha=-0.1),
            lambda: CompoundParams(k=1.5),
            lambda: RelentlessParams(decrement=-2.0),
        ],
    )
    def test_bad_knobs_rejected(self, factory):
        with pytest.raises(ConfigurationError):
            factory()


class TestMakeSenderParams:
    def test_params_threaded_as_kwargs(self):
        seen = {}

        def factory(simulator, data_link, log, **kwargs):
            seen.update(kwargs)
            return "sender"

        register_cc(
            CCInfo(
                name="test-params",
                factory=factory,
                params_type=CubicParams,
            )
        )
        try:
            make_sender(
                "test-params", "sim", "link", "log",
                cc_params=CubicParams(beta=0.6),
            )
            assert seen["beta"] == 0.6
            assert seen["c"] == 0.4
        finally:
            unregister_cc("test-params")

    def test_wrong_params_type_rejected(self):
        with pytest.raises(ConfigurationError, match="CubicParams"):
            make_sender(
                "cubic", "sim", "link", "log", cc_params=BbrParams()
            )

    def test_params_on_paramless_variant_rejected(self):
        with pytest.raises(ConfigurationError, match="no cc_params"):
            make_sender(
                "reno", "sim", "link", "log", cc_params=CubicParams()
            )


class TestDeprecationShim:
    def test_old_path_forwards_and_warns_once(self):
        import repro.simulator.cc as shim

        shim._warned = False  # the warning is once-per-process
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            names = shim.cc_names()
            shim.get_cc("reno")
        assert names == cc_names()
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.cc" in str(deprecations[0].message)

    def test_shim_surface_matches_old_exports(self):
        import repro.simulator.cc as shim

        shim._warned = True  # don't pollute other tests' warning state
        assert shim.CC_REGISTRY_VERSION == CC_REGISTRY_VERSION
        assert set(shim.__all__) <= set(dir(shim))

    def test_unknown_attribute_still_raises(self):
        import repro.simulator.cc as shim

        with pytest.raises(AttributeError):
            shim.no_such_name
