"""Smoke tests for the package's public surface.

Guards the advertised API: the top-level re-exports, the subpackage
``__all__`` lists, and the version string — what a downstream user
imports first.
"""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_headline_exports(self):
        assert callable(repro.enhanced_throughput)
        assert callable(repro.padhye_paper_form)
        assert callable(repro.deviation_rate)
        assert callable(repro.mptcp_gain)
        assert repro.LinkParams is not None

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.core",
        "repro.simulator",
        "repro.hsr",
        "repro.traces",
        "repro.experiments",
        "repro.robustness",
        "repro.util",
    ],
)
class TestSubpackages:
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert getattr(module, name, None) is not None, f"{module_name}.{name}"

    def test_all_has_no_duplicates(self, module_name):
        module = importlib.import_module(module_name)
        names = list(module.__all__)
        assert len(names) == len(set(names)), f"{module_name}.__all__ has duplicates"

    def test_docstring_present(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 40


class TestEndToEndSurface:
    def test_quickstart_snippet_from_readme(self):
        """The README's quickstart must keep working verbatim."""
        from repro import LinkParams, ModelOptions, enhanced_throughput, padhye_paper_form

        hsr = LinkParams(
            rtt=0.12, timeout=0.8, data_loss=0.0075, ack_loss=0.0066,
            recovery_loss=0.27, wmax=64.0, b=2,
        )
        enhanced = enhanced_throughput(hsr)
        baseline = padhye_paper_form(hsr)
        bursty = enhanced_throughput(hsr, ModelOptions(ack_burst_override=0.10))
        assert 0.0 < bursty.throughput < enhanced.throughput < baseline.throughput

    def test_simulator_snippet_from_readme(self):
        from repro.hsr import CHINA_TELECOM, hsr_scenario
        from repro.simulator import run_flow

        scenario = hsr_scenario(CHINA_TELECOM)
        built = scenario.build(duration=20.0, seed=7)
        result = run_flow(built.config, built.data_loss, built.ack_loss, seed=7)
        assert result.throughput > 0.0
