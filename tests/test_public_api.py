"""Snapshot tests for the package's public surface.

Guards the advertised API two ways:

* **Resolution** — every ``__all__`` name on every subpackage resolves
  to a real attribute (no stale exports).
* **Snapshot** — the exported-name sets of the consolidated surfaces
  (``repro``, ``repro.exec``, ``repro.simulator``, ``repro.robustness``,
  ``repro.telemetry``, ``repro.store``, ``repro.scenarios``) are pinned
  verbatim.  Adding or removing a public name is an API change and must
  update the snapshot here — the diff *is* the review artefact.
"""

import importlib

import pytest

import repro

#: the pinned public surface; sorted, exactly as ``__all__`` declares it
API_SNAPSHOT = {
    "repro": [
        "CCInfo",
        "CachedBackend",
        "CampaignReport",
        "CampaignTelemetry",
        "ConnectionConfig",
        "CountingTelemetry",
        "ExecutionResult",
        "Executor",
        "FabricBackend",
        "FabricConfig",
        "FaultPlan",
        "FlowOutcome",
        "FlowResult",
        "FlowSpec",
        "HookSpec",
        "LinkParams",
        "ModelOptions",
        "NullTelemetry",
        "RemoteStore",
        "ResultStore",
        "RetryPolicy",
        "Scenario",
        "ScenarioDocument",
        "StoreServer",
        "SupervisorPolicy",
        "SyntheticDataset",
        "Telemetry",
        "TelemetryConfig",
        "ThroughputPrediction",
        "TimelineTelemetry",
        "Watchdog",
        "__version__",
        "cc_infos",
        "cc_names",
        "compare_models",
        "compile_scenario",
        "describe_cc",
        "deviation_rate",
        "driving_scenario",
        "enhanced_throughput",
        "fabric_scope",
        "fault_scope",
        "flow_key",
        "generate_dataset",
        "generate_stationary_reference",
        "hsr_scenario",
        "interrupt_signal",
        "make_sender",
        "mptcp_gain",
        "open_store",
        "padhye_approx_throughput",
        "padhye_full_throughput",
        "padhye_paper_form",
        "register_cc",
        "run_flow",
        "scenario_names",
        "simulate_spec",
        "stationary_scenario",
        "store_scope",
        "supervise_scope",
        "telemetry_scope",
        "watchdog_scope",
    ],
    "repro.exec": [
        "AutoBackend",
        "ChaosBackend",
        "ChaosPlan",
        "ExecutionResult",
        "Executor",
        "FlowOutcome",
        "FlowSpec",
        "LockstepBackend",
        "ProcessPoolBackend",
        "ResolvedFlow",
        "SerialBackend",
        "SupervisedBackend",
        "SupervisorPolicy",
        "clear_interrupt",
        "current_supervisor_policy",
        "interrupt_signal",
        "simulate_spec",
        "supervise_scope",
    ],
    "repro.cc": [
        "BbrParams",
        "CCInfo",
        "CC_FAMILIES",
        "CC_REGISTRY_VERSION",
        "CompoundParams",
        "CubicParams",
        "RelentlessParams",
        "cc_infos",
        "cc_names",
        "describe_cc",
        "get_cc",
        "make_sender",
        "register_cc",
        "unregister_cc",
    ],
    "repro.simulator": [
        "AckRecord",
        "AckSegment",
        "BaseSender",
        "BbrSender",
        "BernoulliLoss",
        "BottleneckLink",
        "CompositeLoss",
        "CompoundSender",
        "ConnectionConfig",
        "CubicSender",
        "CwndSample",
        "DataPacketRecord",
        "EventHandle",
        "FlowHarness",
        "FlowLog",
        "FlowResult",
        "GilbertElliottLoss",
        "HandoffLoss",
        "Link",
        "LossModel",
        "MAX_BACKOFF_FACTOR",
        "MptcpResult",
        "NewRenoSender",
        "NoLoss",
        "PacketPool",
        "Receiver",
        "RecoveryPhaseRecord",
        "RelentlessSender",
        "RenoSender",
        "RoundCorrelatedLoss",
        "RtoEstimator",
        "Segment",
        "Simulator",
        "TimeoutRecord",
        "TraceDrivenLoss",
        "cc_names",
        "get_cc",
        "make_sender",
        "register_cc",
        "run_backup",
        "run_duplex",
        "run_flow",
        "run_lockstep",
        "unregister_cc",
    ],
    "repro.robustness": [
        "CampaignReport",
        "DEFAULT_EVENT_BUDGET",
        "DEFAULT_WALL_CLOCK_S",
        "FAILURE_CLASSES",
        "FaultPlan",
        "FlowFailure",
        "QuarantineRecord",
        "RetryPolicy",
        "ValidationResult",
        "Watchdog",
        "check_trace",
        "current_fault_plan",
        "current_watchdog",
        "fault_scope",
        "validate_trace",
        "watchdog_scope",
        "with_faults",
    ],
    "repro.telemetry": [
        "COUNTER_NAMES",
        "CampaignTelemetry",
        "CountingTelemetry",
        "FlowTelemetrySummary",
        "NullTelemetry",
        "ProgressReporter",
        "Telemetry",
        "TelemetryConfig",
        "TimelineEvent",
        "TimelineTelemetry",
        "active",
        "current_telemetry_config",
        "telemetry_scope",
    ],
    "repro.store": [
        "CachedBackend",
        "CorruptEntryError",
        "ENGINE_SCHEMA_VERSION",
        "RemoteStore",
        "ResultStore",
        "SCHEMA_VERSION",
        "StoreCircuitBreaker",
        "StoreConfig",
        "StoreServer",
        "StoreStats",
        "UnhashableSpecError",
        "canonical_json",
        "current_store",
        "current_store_config",
        "decode_entry",
        "decode_outcome",
        "encode_entry",
        "encode_outcome",
        "flow_key",
        "open_store",
        "store_scope",
    ],
    "repro.fabric": [
        "CampaignCoordinator",
        "FabricBackend",
        "FabricConfig",
        "FabricWorker",
        "Lease",
        "LeaseTable",
        "ShardPlan",
        "current_fabric_config",
        "fabric_scope",
        "shard_key_for_payload",
    ],
    "repro.scenarios": [
        "CellsSpec",
        "ExtraLossSpec",
        "MobilitySpec",
        "ProviderSpec",
        "ScenarioDocument",
        "SchemaError",
        "SourceInfo",
        "compile_document",
        "compile_scenario",
        "document_from_scenario",
        "document_to_dict",
        "document_to_json",
        "document_to_yaml",
        "get_scenario_document",
        "library_dir",
        "library_paths",
        "load_document_file",
        "load_document_text",
        "load_mapping",
        "parse_document",
        "register_document",
        "resolve_scenario_ref",
        "roundtrip_check",
        "scenario_names",
        "unregister_document",
    ],
}


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.7.0"

    def test_headline_exports(self):
        assert callable(repro.enhanced_throughput)
        assert callable(repro.padhye_paper_form)
        assert callable(repro.deviation_rate)
        assert callable(repro.mptcp_gain)
        assert repro.LinkParams is not None

    def test_consolidated_exports(self):
        """The one-import working set: models, flows, campaigns, telemetry."""
        assert callable(repro.run_flow)
        assert callable(repro.generate_dataset)
        assert repro.FlowSpec is not None
        assert repro.Executor is not None
        assert repro.Scenario is not None
        assert repro.FaultPlan is not None
        assert repro.Watchdog is not None
        assert issubclass(repro.NullTelemetry, repro.Telemetry)
        assert issubclass(repro.CountingTelemetry, repro.Telemetry)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize("module_name", sorted(API_SNAPSHOT))
class TestApiSnapshot:
    """The exported surface is pinned name-for-name."""

    def test_all_matches_snapshot(self, module_name):
        module = importlib.import_module(module_name)
        exported = sorted(module.__all__)
        pinned = sorted(API_SNAPSHOT[module_name])
        added = sorted(set(exported) - set(pinned))
        removed = sorted(set(pinned) - set(exported))
        assert exported == pinned, (
            f"{module_name} public API changed: added {added}, removed "
            f"{removed}; update API_SNAPSHOT in this test if intentional"
        )

    def test_all_is_sorted(self, module_name):
        module = importlib.import_module(module_name)
        assert list(module.__all__) == sorted(module.__all__), (
            f"{module_name}.__all__ must stay sorted for reviewable diffs"
        )


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.cc",
        "repro.core",
        "repro.exec",
        "repro.simulator",
        "repro.hsr",
        "repro.scenarios",
        "repro.telemetry",
        "repro.traces",
        "repro.experiments",
        "repro.robustness",
        "repro.store",
        "repro.fabric",
        "repro.util",
    ],
)
class TestSubpackages:
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert getattr(module, name, None) is not None, f"{module_name}.{name}"

    def test_all_has_no_duplicates(self, module_name):
        module = importlib.import_module(module_name)
        names = list(module.__all__)
        assert len(names) == len(set(names)), f"{module_name}.__all__ has duplicates"

    def test_docstring_present(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 40


class TestEndToEndSurface:
    def test_quickstart_snippet_from_readme(self):
        """The README's quickstart must keep working verbatim."""
        from repro import LinkParams, ModelOptions, enhanced_throughput, padhye_paper_form

        hsr = LinkParams(
            rtt=0.12, timeout=0.8, data_loss=0.0075, ack_loss=0.0066,
            recovery_loss=0.27, wmax=64.0, b=2,
        )
        enhanced = enhanced_throughput(hsr)
        baseline = padhye_paper_form(hsr)
        bursty = enhanced_throughput(hsr, ModelOptions(ack_burst_override=0.10))
        assert 0.0 < bursty.throughput < enhanced.throughput < baseline.throughput

    def test_simulator_snippet_from_readme(self):
        from repro.hsr import CHINA_TELECOM, hsr_scenario
        from repro.simulator import run_flow

        scenario = hsr_scenario(CHINA_TELECOM)
        built = scenario.build(duration=20.0, seed=7)
        result = run_flow(built.config, built.data_loss, built.ack_loss, seed=7)
        assert result.throughput > 0.0

    def test_instrumented_flow_from_top_level(self):
        """The consolidated surface runs an instrumented flow end to end."""
        from repro import ConnectionConfig, CountingTelemetry, run_flow

        telemetry = CountingTelemetry()
        result = run_flow(ConnectionConfig(duration=5.0), telemetry=telemetry)
        assert result.telemetry is telemetry
        assert telemetry.packets_sent > 0
        assert telemetry.events_fired > 0
