"""Engine instrumentation: class-swap construction and event accounting."""

import pytest

from repro.simulator.engine import Simulator
from repro.telemetry import CountingTelemetry, NullTelemetry, active
from repro.util.errors import BudgetExceededError


class TestConstruction:
    def test_no_telemetry_returns_plain_class(self):
        assert type(Simulator()) is Simulator
        assert type(Simulator(telemetry=None)) is Simulator

    def test_null_telemetry_is_equivalent_to_none(self):
        sim = Simulator(telemetry=NullTelemetry())
        assert type(sim) is Simulator
        assert sim.telemetry is None

    def test_active_sink_returns_instrumented_subclass(self):
        telemetry = CountingTelemetry()
        sim = Simulator(telemetry=telemetry)
        assert type(sim) is not Simulator
        assert isinstance(sim, Simulator)
        assert sim.telemetry is telemetry

    def test_active_normalisation(self):
        telemetry = CountingTelemetry()
        assert active(None) is None
        assert active(NullTelemetry()) is None
        assert active(telemetry) is telemetry


class TestEventAccounting:
    def test_scheduled_fired_cancelled(self):
        telemetry = CountingTelemetry()
        sim = Simulator(telemetry=telemetry)
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        handle = sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule_call(3.0, lambda payload, time: fired.append(payload), "c")
        assert telemetry.events_scheduled == 3
        handle.cancel()
        handle.cancel()  # idempotent: still one cancellation
        assert telemetry.events_cancelled == 1
        sim.run()
        assert fired == ["a", "c"]
        # The cancelled tombstone is discarded, not fired.
        assert telemetry.events_fired == 2

    def test_events_fired_reported_even_when_budget_raises(self):
        telemetry = CountingTelemetry()
        sim = Simulator(telemetry=telemetry)
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: None)
        with pytest.raises(BudgetExceededError):
            sim.run(event_budget=2)
        assert telemetry.events_fired == 2

    def test_same_event_order_as_plain_engine(self):
        def drive(sim):
            order = []
            sim.schedule(2.0, lambda: order.append("late"))
            sim.schedule(1.0, lambda: order.append("early"))
            sim.schedule(1.0, lambda: order.append("tie-second"))
            sim.run()
            return order, sim.now, sim.events_processed

        assert drive(Simulator()) == drive(Simulator(telemetry=CountingTelemetry()))
