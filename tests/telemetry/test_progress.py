"""ProgressReporter: throttling, final line, idempotent finish."""

import io

import pytest

from repro.telemetry import ProgressReporter
from repro.util.errors import ConfigurationError


class TestProgressReporter:
    def test_final_update_always_prints(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=3, stream=stream, min_interval_s=3600.0)
        reporter.update(1)  # first line prints (interval measured from -inf)
        reporter.update(2)  # throttled
        reporter.update(3)  # final: prints regardless of throttle
        lines = stream.getvalue().strip().splitlines()
        assert lines[0].startswith("flows 1/3")
        assert lines[-1].startswith("flows 3/3")
        assert len(lines) == 2

    def test_finish_after_final_update_does_not_duplicate(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=2, stream=stream, min_interval_s=0.0)
        reporter.update(1)
        reporter.update(2)
        reporter.finish()
        reporter.finish()
        lines = stream.getvalue().strip().splitlines()
        assert sum(1 for line in lines if line.startswith("flows 2/2")) == 1

    def test_finish_without_updates_prints_once(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=5, stream=stream)
        reporter.finish()
        reporter.finish()
        lines = stream.getvalue().strip().splitlines()
        assert lines == ["flows 0/5 (0.0/s)"]

    def test_intermediate_lines_carry_rate_and_eta(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=4, stream=stream, min_interval_s=0.0)
        reporter.update(2)
        line = stream.getvalue().strip()
        assert "/s" in line
        assert "ETA" in line

    def test_custom_label(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=1, label="traces", stream=stream)
        reporter.update(1)
        assert stream.getvalue().startswith("traces 1/1")

    def test_invalid_arguments_raise(self):
        with pytest.raises(ConfigurationError):
            ProgressReporter(total=-1)
        with pytest.raises(ConfigurationError):
            ProgressReporter(total=1, min_interval_s=-0.1)
