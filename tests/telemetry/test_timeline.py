"""TimelineTelemetry: phase-tagged event records."""

from repro.simulator.channel import BernoulliLoss
from repro.simulator.connection import ConnectionConfig, run_flow
from repro.telemetry import TimelineTelemetry
from repro.util.rng import RngStream


def _flow(telemetry, seed=31, duration=25.0):
    return run_flow(
        ConnectionConfig(duration=duration),
        data_loss=BernoulliLoss(0.02, RngStream(seed, "data")),
        ack_loss=BernoulliLoss(0.01, RngStream(seed, "ack")),
        seed=seed,
        telemetry=telemetry,
    )


class TestTimeline:
    def test_records_drops_and_phase_transitions(self):
        telemetry = TimelineTelemetry()
        _flow(telemetry)
        drops = telemetry.events_of_kind("drop")
        phases = telemetry.events_of_kind("phase")
        assert len(drops) == telemetry.packets_dropped
        assert len(phases) == telemetry.cwnd_phase_transitions
        assert all(event.detail in ("data", "ack") for event in drops)

    def test_packet_events_off_by_default(self):
        telemetry = TimelineTelemetry()
        _flow(telemetry)
        assert telemetry.events_of_kind("send") == []
        assert telemetry.events_of_kind("delivery") == []

    def test_record_packets_captures_sends(self):
        telemetry = TimelineTelemetry(record_packets=True)
        _flow(telemetry, duration=5.0)
        assert len(telemetry.events_of_kind("send")) == telemetry.packets_sent
        assert (
            len(telemetry.events_of_kind("delivery")) == telemetry.packets_delivered
        )

    def test_events_are_time_ordered(self):
        telemetry = TimelineTelemetry()
        _flow(telemetry)
        times = [event.time for event in telemetry.events]
        assert times == sorted(times)

    def test_phase_tags_track_sender_phases(self):
        telemetry = TimelineTelemetry()
        log = _flow(telemetry).log
        # The set of phases events were tagged with must be a subset of
        # the phases the sender actually logged.
        logged_phases = {sample.phase for sample in log.cwnd_samples}
        tagged_phases = {event.phase for event in telemetry.events}
        assert tagged_phases <= logged_phases

    def test_transition_event_is_tagged_with_departing_phase(self):
        telemetry = TimelineTelemetry()
        _flow(telemetry)
        for event in telemetry.events_of_kind("phase"):
            old_phase = event.detail.split(" -> ")[0]
            assert event.phase == old_phase

    def test_rto_fired_events_name_spuriousness(self):
        telemetry = TimelineTelemetry()
        _flow(telemetry)
        fired = telemetry.events_of_kind("rto_fired")
        assert len(fired) == telemetry.rto_fired
        spurious = [event for event in fired if "spurious" in event.detail]
        assert len(spurious) == telemetry.rto_spurious
