"""Campaign telemetry: executor aggregation, backends, ambient scope.

The determinism contract: campaign telemetry is assembled from
wall-clock-free counters, merged in spec order, so its canonical JSON
is byte-identical between serial and process-pool runs.
"""

import io

import pytest

from repro.exec import Executor, FlowSpec
from repro.exec.executor import ProcessPoolBackend, SerialBackend
from repro.simulator.channel import BernoulliLoss
from repro.simulator.connection import ConnectionConfig
from repro.telemetry import (
    CampaignTelemetry,
    CountingTelemetry,
    TelemetryConfig,
    current_telemetry_config,
    telemetry_scope,
)
from repro.util.rng import RngStream


def _spec(seed, duration=6.0):
    return FlowSpec(
        config=ConnectionConfig(duration=duration),
        data_loss=BernoulliLoss(0.02, RngStream(seed, "data")),
        ack_loss=BernoulliLoss(0.01, RngStream(seed, "ack")),
        seed=seed,
        flow_id=f"flow/{seed}",
    )


class TestExecutorAggregation:
    def test_off_by_default(self):
        execution = Executor().run([_spec(0)])
        assert execution.telemetry is None
        assert execution.outcomes[0].result.telemetry is None

    def test_collects_when_enabled(self):
        execution = Executor(telemetry=True).run([_spec(0), _spec(1)])
        campaign = execution.telemetry
        assert campaign is not None
        assert campaign.flows == 2
        assert campaign.get("packets_sent") > 0
        # Per-flow sinks ride on the results.
        for outcome in execution.outcomes:
            assert isinstance(outcome.result.telemetry, CountingTelemetry)

    def test_campaign_is_sum_of_flow_counters(self):
        execution = Executor(telemetry=True).run([_spec(3), _spec(4)])
        total = sum(
            outcome.result.telemetry.packets_sent
            for outcome in execution.outcomes
        )
        assert execution.telemetry.get("packets_sent") == total

    def test_serial_and_pool_json_byte_identical(self):
        specs = [_spec(seed) for seed in range(4)]
        serial = Executor(backend=SerialBackend(), telemetry=True).run(specs)
        pooled = Executor(backend=ProcessPoolBackend(2), telemetry=True).run(specs)
        assert serial.telemetry.to_json() == pooled.telemetry.to_json()

    def test_spec_level_flag_collects_without_executor_flag(self):
        execution = Executor().run([_spec(0).with_(telemetry=True), _spec(1)])
        assert execution.telemetry is not None
        assert execution.telemetry.flows == 1

    def test_explicit_false_overrides_ambient(self):
        with telemetry_scope(TelemetryConfig(collect=True)):
            execution = Executor(telemetry=False).run([_spec(0)])
        assert execution.telemetry is None


class TestAmbientScope:
    def test_scope_installs_and_restores(self):
        assert current_telemetry_config() is None
        config = TelemetryConfig()
        with telemetry_scope(config):
            assert current_telemetry_config() is config
        assert current_telemetry_config() is None

    def test_none_shadows_outer_scope(self):
        with telemetry_scope(TelemetryConfig()):
            with telemetry_scope(None):
                assert current_telemetry_config() is None

    def test_executor_inherits_ambient_collection(self):
        with telemetry_scope(TelemetryConfig(collect=True)):
            execution = Executor().run([_spec(0)])
        assert execution.telemetry is not None

    def test_aggregate_accumulates_across_runs(self):
        aggregate = CampaignTelemetry()
        config = TelemetryConfig(collect=True, aggregate=aggregate)
        with telemetry_scope(config):
            Executor().run([_spec(0)])
            Executor().run([_spec(1), _spec(2)])
        assert aggregate.flows == 3
        assert aggregate.get("packets_sent") > 0


class TestProgressThroughExecutor:
    def test_progress_lines_written_to_configured_stream(self):
        stream = io.StringIO()
        config = TelemetryConfig(
            collect=False, progress=True, progress_stream=stream
        )
        with telemetry_scope(config):
            execution = Executor().run([_spec(0), _spec(1)])
        text = stream.getvalue()
        assert "flows 2/2" in text
        # Progress is presentation only: no telemetry was collected.
        assert execution.telemetry is None

    def test_progress_does_not_change_result_bytes(self):
        import pickle

        specs = [_spec(seed) for seed in range(2)]
        plain = Executor().run(specs)
        stream = io.StringIO()
        with telemetry_scope(
            TelemetryConfig(collect=False, progress=True, progress_stream=stream)
        ):
            progressed = Executor().run(specs)
        for left, right in zip(plain.outcomes, progressed.outcomes):
            assert pickle.dumps(left.result.log) == pickle.dumps(right.result.log)


class TestCampaignTelemetryValue:
    def test_json_round_trip(self):
        execution = Executor(telemetry=True).run([_spec(0)])
        campaign = execution.telemetry
        import json

        loaded = CampaignTelemetry.from_mapping(json.loads(campaign.to_json()))
        assert loaded.to_json() == campaign.to_json()

    def test_merge_adds_flows_and_counters(self):
        left = CampaignTelemetry(flows=1, counters={"packets_sent": 10})
        right = CampaignTelemetry(flows=2, counters={"packets_sent": 5, "x": 1})
        left.merge(right)
        assert left.flows == 3
        assert left.get("packets_sent") == 15
        assert left.get("x") == 1

    def test_summary_mentions_flows_and_rtos(self):
        campaign = CampaignTelemetry(
            flows=2,
            counters={"packets_sent": 100, "rto_fired": 3, "rto_spurious": 1},
        )
        text = campaign.summary()
        assert "2 flows" in text
        assert "3 RTOs" in text


class TestExecutorDeprecation:
    def test_positional_backend_warns_once_and_works(self):
        import warnings

        import repro.exec.executor as executor_module

        executor_module._POSITIONAL_WARNED = False
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                first = Executor(SerialBackend())
                Executor(SerialBackend())
            deprecations = [
                warning
                for warning in caught
                if issubclass(warning.category, DeprecationWarning)
            ]
            assert len(deprecations) == 1
            assert isinstance(first.backend, SerialBackend)
        finally:
            executor_module._POSITIONAL_WARNED = False

    def test_double_backend_raises(self):
        with pytest.raises(TypeError):
            Executor(SerialBackend(), backend=SerialBackend())
