"""CountingTelemetry reconciles exactly with the flow log.

The counters are a *live* view of what the log records post-hoc; any
divergence means a hook is misplaced (double-counted, skipped, or
observing the wrong layer).  Reconciliation is therefore exact, not
approximate.
"""

import pytest

from repro.simulator.channel import BernoulliLoss, GilbertElliottLoss
from repro.simulator.connection import ConnectionConfig, run_flow
from repro.telemetry import COUNTER_NAMES, CountingTelemetry, FlowTelemetrySummary
from repro.util.rng import RngStream


def _lossy_flow(telemetry, seed=11, duration=25.0, variant="reno"):
    return run_flow(
        ConnectionConfig(duration=duration, jitter_sigma=0.1),
        data_loss=BernoulliLoss(0.012, RngStream(seed, "data")),
        ack_loss=GilbertElliottLoss(
            RngStream(seed, "ack"), mean_good_duration=5.0, mean_bad_duration=0.3
        ),
        seed=seed,
        variant=variant,
        telemetry=telemetry,
    )


class TestReconciliation:
    @pytest.mark.parametrize("variant", ["reno", "newreno"])
    def test_counters_match_flow_log(self, variant):
        telemetry = CountingTelemetry()
        log = _lossy_flow(telemetry, variant=variant).log

        assert telemetry.data_sent == log.data_sent
        assert telemetry.data_dropped == log.data_lost
        assert telemetry.acks_sent == log.acks_sent
        assert telemetry.acks_dropped == log.acks_lost
        assert telemetry.packets_sent == log.data_sent + log.acks_sent
        assert telemetry.packets_dropped == log.data_lost + log.acks_lost

        delivered = sum(
            1 for p in log.data_packets if p.arrival_time is not None
        ) + sum(1 for a in log.acks if a.arrival_time is not None)
        assert telemetry.packets_delivered == delivered

        assert telemetry.rto_fired == len(log.timeouts)
        assert 0 <= telemetry.rto_spurious <= telemetry.rto_fired

        phase_changes = sum(
            1
            for before, after in zip(log.cwnd_samples, log.cwnd_samples[1:])
            if before.phase != after.phase
        )
        assert telemetry.cwnd_phase_transitions == phase_changes

    def test_direction_split_sums_to_totals(self):
        telemetry = CountingTelemetry()
        _lossy_flow(telemetry)
        assert telemetry.packets_sent == telemetry.data_sent + telemetry.acks_sent
        assert (
            telemetry.packets_dropped
            == telemetry.data_dropped + telemetry.acks_dropped
        )
        assert (
            telemetry.packets_delivered
            == telemetry.data_delivered + telemetry.acks_delivered
        )

    def test_engine_counters_are_consistent(self):
        telemetry = CountingTelemetry()
        _lossy_flow(telemetry)
        assert telemetry.events_scheduled > 0
        # Events fired plus those still queued/cancelled account for
        # everything scheduled; nothing fires that was never scheduled.
        assert telemetry.events_fired <= telemetry.events_scheduled
        assert telemetry.events_cancelled <= telemetry.events_scheduled

    def test_rto_armed_covers_every_fire(self):
        telemetry = CountingTelemetry()
        _lossy_flow(telemetry)
        assert telemetry.rto_armed >= telemetry.rto_fired

    def test_clean_channel_has_no_drops_or_timeouts(self):
        telemetry = CountingTelemetry()
        run_flow(ConnectionConfig(duration=10.0), telemetry=telemetry)
        assert telemetry.packets_dropped == 0
        assert telemetry.rto_fired == 0
        assert telemetry.budget_trips == 0
        assert telemetry.packets_sent > 0


class TestInstrumentationIsInert:
    def test_instrumented_flow_is_bit_identical_to_plain(self):
        """Telemetry observes; it must never perturb the simulation."""
        import pickle

        plain = _lossy_flow(None, seed=23)
        counted = _lossy_flow(CountingTelemetry(), seed=23)
        assert pickle.dumps(plain.log) == pickle.dumps(counted.log)


class TestSummaries:
    def test_summarise_round_trips_every_counter(self):
        telemetry = CountingTelemetry()
        _lossy_flow(telemetry)
        summary = telemetry.summarise("flow/0")
        assert isinstance(summary, FlowTelemetrySummary)
        assert summary.flow_id == "flow/0"
        for name in COUNTER_NAMES:
            assert summary.get(name) == getattr(telemetry, name)

    def test_as_dict_preserves_declaration_order(self):
        telemetry = CountingTelemetry()
        assert tuple(telemetry.as_dict()) == COUNTER_NAMES

    def test_summary_pickles(self):
        import pickle

        telemetry = CountingTelemetry()
        _lossy_flow(telemetry)
        summary = telemetry.summarise("f")
        clone = pickle.loads(pickle.dumps(summary))
        assert clone == summary
