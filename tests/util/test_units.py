"""Unit tests for repro.util.units."""

import pytest

from repro.util.units import (
    BYTES_PER_MSS,
    bytes_to_gb,
    kmh_to_mps,
    mbps_to_pps,
    mps_to_kmh,
    ms_to_seconds,
    pps_to_mbps,
    seconds_to_ms,
)


def test_kmh_roundtrip():
    assert mps_to_kmh(kmh_to_mps(300.0)) == pytest.approx(300.0)


def test_kmh_known_value():
    # 300 km/h — the paper's HSR steady speed — is 83.33 m/s.
    assert kmh_to_mps(300.0) == pytest.approx(83.3333, rel=1e-4)


def test_pps_mbps_roundtrip():
    assert mbps_to_pps(pps_to_mbps(123.0)) == pytest.approx(123.0)


def test_pps_to_mbps_known_value():
    # 1 packet of 1460 bytes per second = 11680 bits/s = 0.01168 Mbps.
    assert pps_to_mbps(1.0) == pytest.approx(0.01168)


def test_custom_mss():
    assert pps_to_mbps(1.0, mss_bytes=1000) == pytest.approx(0.008)


def test_time_conversions():
    assert seconds_to_ms(1.5) == pytest.approx(1500.0)
    assert ms_to_seconds(1500.0) == pytest.approx(1.5)


def test_bytes_to_gb():
    assert bytes_to_gb(40.47e9) == pytest.approx(40.47)


def test_mss_constant_is_standard():
    assert BYTES_PER_MSS == 1460
