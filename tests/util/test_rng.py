"""Unit tests for repro.util.rng."""

import pytest

from repro.util.rng import RngStream, derive_seed, spawn_streams


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_differs_by_path(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_elements_not_concatenated(self):
        # ("ab",) and ("a", "b") must not collide via naive concatenation.
        assert derive_seed(7, "ab") != derive_seed(7, "a", "b")

    def test_accepts_non_string_path(self):
        assert derive_seed(42, 1, 2.5) == derive_seed(42, 1, 2.5)


class TestRngStream:
    def test_same_seed_same_sequence(self):
        a = RngStream(123)
        b = RngStream(123)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seed_different_sequence(self):
        a = RngStream(123)
        b = RngStream(124)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_bernoulli_extremes(self):
        stream = RngStream(1)
        assert stream.bernoulli(0.0) is False
        assert stream.bernoulli(1.0) is True
        assert stream.bernoulli(-0.5) is False
        assert stream.bernoulli(1.5) is True

    def test_bernoulli_rate_converges(self):
        stream = RngStream(7)
        n = 20000
        hits = sum(stream.bernoulli(0.3) for _ in range(n))
        assert abs(hits / n - 0.3) < 0.02

    def test_uniform_bounds(self):
        stream = RngStream(5)
        for _ in range(1000):
            value = stream.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_randint_bounds(self):
        stream = RngStream(5)
        values = {stream.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_geometric_at_least_one(self):
        stream = RngStream(9)
        assert all(stream.geometric(0.5) >= 1 for _ in range(100))

    def test_geometric_certain_success(self):
        stream = RngStream(9)
        assert stream.geometric(1.0) == 1

    def test_geometric_mean(self):
        stream = RngStream(11)
        n = 5000
        total = sum(stream.geometric(0.25) for _ in range(n))
        assert abs(total / n - 4.0) < 0.25

    def test_geometric_rejects_invalid_probability(self):
        stream = RngStream(1)
        with pytest.raises(ValueError):
            stream.geometric(0.0)
        with pytest.raises(ValueError):
            stream.geometric(1.5)

    def test_spawn_independent_and_deterministic(self):
        root = RngStream(99)
        child_a1 = root.spawn("a")
        child_a2 = RngStream(99).spawn("a")
        child_b = RngStream(99).spawn("b")
        seq_a1 = [child_a1.random() for _ in range(5)]
        seq_a2 = [child_a2.random() for _ in range(5)]
        seq_b = [child_b.random() for _ in range(5)]
        assert seq_a1 == seq_a2
        assert seq_a1 != seq_b

    def test_spawn_does_not_consume_parent_state(self):
        a = RngStream(5)
        b = RngStream(5)
        a.spawn("child")
        assert a.random() == b.random()

    def test_choice_and_shuffle(self):
        stream = RngStream(3)
        items = [1, 2, 3, 4]
        assert stream.choice(items) in items
        shuffled = list(items)
        stream.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_expovariate_positive(self):
        stream = RngStream(3)
        assert all(stream.expovariate(2.0) >= 0.0 for _ in range(100))

    def test_lognormal_positive(self):
        stream = RngStream(3)
        assert all(stream.lognormal(0.0, 1.0) > 0.0 for _ in range(100))


class TestSpawnStreams:
    def test_one_stream_per_name(self):
        streams = spawn_streams(42, ["data", "ack", "workload"])
        assert set(streams) == {"data", "ack", "workload"}

    def test_streams_are_independent(self):
        streams = spawn_streams(42, ["x", "y"])
        assert streams["x"].random() != streams["y"].random()

    def test_reproducible(self):
        first = spawn_streams(42, ["x"])["x"].random()
        second = spawn_streams(42, ["x"])["x"].random()
        assert first == second
