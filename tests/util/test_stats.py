"""Unit tests for repro.util.stats."""

import math

import pytest

from repro.util.stats import (
    EmpiricalCdf,
    geometric_mean,
    mean,
    median,
    pearson_correlation,
    percentile,
    stddev,
    variance,
)


class TestSummaryStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == pytest.approx(2.0)

    def test_median_even(self):
        assert median([4.0, 1.0, 3.0, 2.0]) == pytest.approx(2.5)

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_variance_and_stddev(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        assert variance(values) == pytest.approx(4.0)
        assert stddev(values) == pytest.approx(2.0)

    def test_variance_single_element(self):
        assert variance([5.0]) == pytest.approx(0.0)

    def test_percentile_endpoints(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == pytest.approx(1.0)
        assert percentile(values, 100) == pytest.approx(4.0)

    def test_percentile_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_percentile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestPearsonCorrelation:
    def test_perfect_positive(self):
        xs = [1.0, 2.0, 3.0]
        ys = [2.0, 4.0, 6.0]
        assert pearson_correlation(xs, ys) == pytest.approx(1.0)

    def test_perfect_negative(self):
        xs = [1.0, 2.0, 3.0]
        ys = [6.0, 4.0, 2.0]
        assert pearson_correlation(xs, ys) == pytest.approx(-1.0)

    def test_constant_sequence_returns_zero(self):
        assert pearson_correlation([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1.0], [1.0, 2.0])

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1.0], [2.0])


class TestEmpiricalCdf:
    def test_from_samples_empty_raises(self):
        with pytest.raises(ValueError):
            EmpiricalCdf.from_samples([])

    def test_evaluation(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.5) == pytest.approx(0.0)
        assert cdf(1.0) == pytest.approx(0.25)
        assert cdf(2.5) == pytest.approx(0.5)
        assert cdf(4.0) == pytest.approx(1.0)
        assert cdf(100.0) == pytest.approx(1.0)

    def test_monotone_nondecreasing(self):
        cdf = EmpiricalCdf.from_samples([3.0, 1.0, 2.0, 2.0])
        xs = [0.0, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0]
        values = [cdf(x) for x in xs]
        assert values == sorted(values)

    def test_quantile(self):
        cdf = EmpiricalCdf.from_samples([10.0, 20.0, 30.0, 40.0])
        assert cdf.quantile(0.25) == pytest.approx(10.0)
        assert cdf.quantile(0.5) == pytest.approx(20.0)
        assert cdf.quantile(1.0) == pytest.approx(40.0)

    def test_quantile_rejects_bad_q(self):
        cdf = EmpiricalCdf.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(0.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.1)

    def test_quantile_inverts_cdf(self):
        cdf = EmpiricalCdf.from_samples([5.0, 1.0, 9.0, 3.0, 7.0])
        for q in (0.2, 0.4, 0.6, 0.8, 1.0):
            assert cdf(cdf.quantile(q)) >= q - 1e-12

    def test_step_points(self):
        cdf = EmpiricalCdf.from_samples([2.0, 1.0])
        assert cdf.step_points() == [(1.0, 0.5), (2.0, 1.0)]

    def test_mean_and_n(self):
        cdf = EmpiricalCdf.from_samples([1.0, 3.0])
        assert cdf.n == 2
        assert cdf.mean() == pytest.approx(2.0)
