"""Tests for the experiment registry and CLI plumbing."""

import json

import pytest

from repro.experiments.registry import (
    ExperimentResult,
    format_result,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.runner import main


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        ids = set(list_experiments())
        expected = {f"fig{i}" for i in range(1, 13)} | {
            "table1", "delack", "eq21_ablation", "variants", "speed_sweep",
            "trip_profile",
        }
        assert expected <= ids

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_run_by_id(self):
        result = run_experiment("fig5")
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "fig5"

    def test_titles_nonempty(self):
        assert all(title for title in list_experiments().values())


class TestFormatting:
    def test_format_with_rows_and_headline(self):
        result = ExperimentResult(
            experiment_id="x",
            title="Title",
            rows=[{"a": 1, "b": 2.5}, {"a": 10, "b": None}],
            headline={"key": 3.0},
            notes="a note",
        )
        text = format_result(result)
        assert "Title" in text
        assert "a" in text and "b" in text
        assert "2.5" in text
        assert "-" in text  # None cell
        assert "key: 3" in text
        assert "a note" in text

    def test_format_empty_result(self):
        text = format_result(ExperimentResult(experiment_id="x", title="T"))
        assert "T" in text


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "table1" in out

    def test_run_command(self, capsys):
        assert main(["run", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out

    def test_run_json(self, capsys):
        assert main(["run", "fig5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "fig5"
        assert payload["headline"]["case_b_timeouts"] == 0

    def test_unknown_experiment_exit_code(self, capsys):
        assert main(["run", "nope"]) == 2
