"""Shape assertions for the scripted micro-experiments (Figs. 5, 7, 11)."""

from repro.experiments.registry import run_experiment


class TestFig5:
    def test_all_lost_is_pure_spurious_timeout(self):
        result = run_experiment("fig5")
        assert result.headline["case_a_timeouts"] >= 1
        assert result.headline["case_a_data_lost"] == 0

    def test_partial_loss_no_timeout(self):
        result = run_experiment("fig5")
        assert result.headline["case_b_timeouts"] == 0

    def test_rows_describe_both_cases(self):
        result = run_experiment("fig5")
        assert len(result.rows) == 2
        verdicts = [row["verdict"] for row in result.rows]
        assert verdicts == ["spurious timeout", "no timeout"]


class TestFig7:
    def test_ack_burst_case_has_no_data_loss(self):
        result = run_experiment("fig7")
        assert result.headline["case_b_data_lost"] == 0
        assert result.headline["case_b_timeouts"] >= 1
        assert result.headline["case_b_duplicate_payloads"] >= 1

    def test_data_loss_case_loses_data(self):
        result = run_experiment("fig7")
        assert result.headline["case_a_data_lost"] >= 1

    def test_trajectories_cover_both_cases(self):
        result = run_experiment("fig7")
        cases = {row["case"] for row in result.rows}
        assert cases == {"data-loss ending", "ACK-burst ending"}


class TestFig11:
    def test_all_lost_times_out(self):
        result = run_experiment("fig11")
        assert result.headline["timeouts_all_lost"] >= 1

    def test_surviving_cumulative_ack_prevents_timeout(self):
        result = run_experiment("fig11")
        assert result.headline["timeouts_ack_a_survives"] == 0

    def test_no_duplicates_when_ack_survives(self):
        result = run_experiment("fig11")
        survivor_row = result.rows[1]
        assert survivor_row["duplicate_payloads"] == 0
