"""Tests for the cross_cc experiment (the CC-zoo campaign sweep)."""

import pytest

from repro.cc import cc_names
from repro.experiments.cross_cc import resolve_cc_selection, run
from repro.experiments.registry import run_experiment
from repro.store import ResultStore, store_scope
from repro.util.errors import ConfigurationError


class TestSelection:
    def test_all_expands_to_registry_in_registration_order(self):
        selection = resolve_cc_selection("all")
        assert set(selection) == set(cc_names())
        assert selection[0] == "reno"

    def test_none_and_empty_mean_all(self):
        assert resolve_cc_selection(None) == resolve_cc_selection("all")
        assert resolve_cc_selection("  ") == resolve_cc_selection("all")

    def test_comma_separated_list(self):
        assert resolve_cc_selection("cubic, bbr") == ("cubic", "bbr")

    def test_unknown_name_rejected_with_known_list(self):
        with pytest.raises(ConfigurationError, match="newreno"):
            resolve_cc_selection("cubic,vegas")


class TestExperiment:
    def test_small_sweep_produces_per_cc_rows(self):
        result = run(scale=0.05, seed=77, cc="reno,bbr")
        assert [row["cc"] for row in result.rows] == ["reno", "bbr"]
        for row in result.rows:
            assert row["flows"] >= 4  # one per Table-I cell
            assert row["mean_tput_pps"] > 0.0
            assert row["family"] in ("loss-based", "delay-based", "rate-based")
        assert result.headline["sim_bbr_pps"] > 0.0
        assert result.headline["best_cc_pps"] >= result.headline["worst_cc_pps"]

    def test_registry_threads_cc_kwarg(self):
        result = run_experiment("cross_cc", scale=0.05, seed=77, cc="reno")
        assert [row["cc"] for row in result.rows] == ["reno"]

    def test_warm_store_rerun_identical_with_zero_simulated(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "store")
        with store_scope(store):
            cold = run(scale=0.05, seed=78, cc="cubic")
        cold_err = capsys.readouterr().err
        assert "flows simulated=4" in cold_err
        with store_scope(store):
            warm = run(scale=0.05, seed=78, cc="cubic")
        warm_err = capsys.readouterr().err
        assert "store hits=4 flows simulated=0" in warm_err
        assert warm == cold  # the result itself is byte-identical
