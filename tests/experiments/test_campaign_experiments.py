"""Shape assertions for the campaign-scale experiments.

Run at tiny scales to bound test time; every assertion checks the
*shape* the paper reports, not absolute values (see EXPERIMENTS.md).
"""

import pytest

from repro.experiments.registry import run_experiment

SCALE = 0.25  # miniature campaigns
SEED = 2015


@pytest.fixture(scope="module")
def table1():
    return run_experiment("table1", scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def fig3():
    return run_experiment("fig3", scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def fig4():
    return run_experiment("fig4", scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def fig6():
    return run_experiment("fig6", scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def fig10():
    return run_experiment("fig10", scale=0.35, seed=SEED)


class TestTable1:
    def test_four_rows(self, table1):
        assert len(table1.rows) == 4

    def test_providers_covered(self, table1):
        providers = {row["provider"] for row in table1.rows}
        assert providers == {"China Mobile", "China Unicom", "China Telecom"}

    def test_bytes_positive(self, table1):
        assert table1.headline["total_gb"] > 0.0

    def test_flow_counts_proportional(self, table1):
        by_provider = {}
        for row in table1.rows:
            by_provider[row["provider"]] = by_provider.get(row["provider"], 0) + row["flows"]
        # Mobile has ~125/255 of the flows in the paper's campaign.
        assert by_provider["China Mobile"] >= by_provider["China Unicom"]


class TestFig3:
    def test_recovery_loss_dominates_lifetime_loss(self, fig3):
        assert (
            fig3.headline["mean_recovery_loss"]
            > 3.0 * fig3.headline["mean_lifetime_loss"]
        )

    def test_quantile_rows_monotone(self, fig3):
        quantiles = [row["quantile"] for row in fig3.rows]
        lifetime = [row["lifetime_loss"] for row in fig3.rows]
        assert quantiles == sorted(quantiles)
        assert lifetime == sorted(lifetime)

    def test_lifetime_loss_order_of_magnitude(self, fig3):
        # Paper: 0.7526%; synthetic channel lands within a few x.
        assert 0.001 <= fig3.headline["mean_lifetime_loss"] <= 0.05


class TestFig4:
    def test_positive_correlation(self, fig4):
        assert fig4.headline["pearson_correlation"] > 0.0

    def test_positive_envelope_slope(self, fig4):
        assert fig4.headline["envelope_slope"] > 0.0

    def test_points_within_envelope(self, fig4):
        slope = fig4.headline["envelope_slope"]
        low = fig4.headline["envelope_low_intercept"]
        high = fig4.headline["envelope_high_intercept"]
        for row in fig4.rows:
            y = row["timeout_probability"]
            x = row["ack_loss_rate"]
            assert slope * x + low - 1e-9 <= y <= slope * x + high + 1e-9


class TestFig6:
    def test_hsr_ack_loss_elevated(self, fig6):
        assert fig6.headline["elevation_factor"] > 3.0

    def test_cdf_dominance(self, fig6):
        for row in fig6.rows:
            assert row["hsr_ack_loss"] >= row["stationary_ack_loss"] - 1e-9

    def test_order_of_magnitude(self, fig6):
        assert 0.001 <= fig6.headline["mean_hsr_ack_loss"] <= 0.08
        assert fig6.headline["mean_stationary_ack_loss"] <= 0.01


class TestFig10:
    def test_enhanced_beats_padhye_overall(self, fig10):
        assert fig10.headline["enhanced_mean_D"] < fig10.headline["padhye_mean_D"]

    def test_improvement_positive(self, fig10):
        assert fig10.headline["improvement_points"] > 0.05

    def test_enhanced_beats_padhye_per_provider(self, fig10):
        by_provider = {}
        for row in fig10.rows:
            by_provider.setdefault(row["provider"], {})[row["model"]] = row["mean_D_pct"]
        for provider, models in by_provider.items():
            assert models["enhanced"] < models["padhye"], provider
