"""Shape assertions for the single-flow experiments (Figs. 1, 2, 8, 9, 12)
and the extension experiments."""

import pytest

from repro.experiments.registry import run_experiment

SEED = 2015


@pytest.fixture(scope="module")
def fig1():
    return run_experiment("fig1", scale=0.5, seed=SEED)


@pytest.fixture(scope="module")
def fig2():
    return run_experiment("fig2", scale=1.0, seed=SEED)


@pytest.fixture(scope="module")
def fig8():
    return run_experiment("fig8", scale=0.5, seed=SEED)


@pytest.fixture(scope="module")
def fig9():
    return run_experiment("fig9", scale=0.4, seed=SEED)


class TestFig1:
    def test_flow_has_timeouts(self, fig1):
        assert fig1.headline["timeouts"] >= 2

    def test_latency_near_paper_30ms(self, fig1):
        assert 20.0 <= fig1.headline["mean_data_latency_ms"] <= 60.0
        assert 20.0 <= fig1.headline["mean_ack_latency_ms"] <= 60.0

    def test_losses_marked(self, fig1):
        assert fig1.headline["lost_data"] > 0
        assert fig1.headline["lost_acks"] > 0

    def test_one_row_per_timeout(self, fig1):
        assert len(fig1.rows) == fig1.headline["timeouts"]


class TestFig2:
    def test_phase_found(self, fig2):
        assert fig2.rows, fig2.notes

    def test_timer_doubles_along_sequence(self, fig2):
        multiples = [row["timer_multiple"] for row in fig2.rows]
        assert multiples == sorted(multiples)
        if len(multiples) >= 2:
            assert multiples[1] == 2 * multiples[0]

    def test_last_retransmission_delivered(self, fig2):
        assert fig2.rows[-1]["retransmission"] == "delivered"

    def test_recovery_loss_elevated(self, fig2):
        assert fig2.headline["in_recovery_loss_rate"] > 0.0


class TestFig8:
    def test_cycles_found(self, fig8):
        assert fig8.headline["cycles"] >= 2

    def test_q_in_unit_interval(self, fig8):
        assert 0.0 < fig8.headline["empirical_Q_1_over_n"] <= 1.0

    def test_sequences_have_timeouts(self, fig8):
        assert fig8.headline["mean_timeouts_per_sequence"] >= 1.0


class TestFig9:
    def test_flow_spends_time_at_wmax(self, fig9):
        assert fig9.headline["fraction_of_ca_time_at_wmax"] > 0.3

    def test_rows_cover_ramp_and_flat(self, fig9):
        segments = {row["segment"] for row in fig9.rows}
        assert len(segments) == 2


class TestFig12:
    @pytest.fixture(scope="class")
    def fig12(self):
        return run_experiment("fig12", scale=0.5, seed=SEED)

    def test_every_provider_gains(self, fig12):
        assert fig12.headline["mobile_gain_pct"] > 0.0
        assert fig12.headline["unicom_gain_pct"] > 0.0
        assert fig12.headline["telecom_gain_pct"] > 0.0

    def test_paper_ordering(self, fig12):
        # Worst coverage gains most: Telecom > Unicom > Mobile.
        assert (
            fig12.headline["telecom_gain_pct"]
            > fig12.headline["unicom_gain_pct"]
            > fig12.headline["mobile_gain_pct"]
        )


class TestExtensions:
    @pytest.fixture(scope="class")
    def delack(self):
        return run_experiment("delack")

    @pytest.fixture(scope="class")
    def ablation(self):
        return run_experiment("eq21_ablation")

    def test_delack_adaptive_contrast(self, delack):
        # The adaptive policy allows a large delayed window on the benign
        # channel but clamps it on the harsh one.
        assert delack.headline["adaptive_b_stationary"] > delack.headline["adaptive_b_hsr_harsh"]

    def test_delack_burst_grows_with_b(self, delack):
        rows = [row for row in delack.rows if row["channel"] == "hsr-harsh"]
        bursts = [row["ack_burst_P_a"] for row in rows]
        # Non-decreasing up to fixed-point solver noise (~1e-12) where
        # P_a saturates at the per-ACK loss rate.
        for earlier, later in zip(bursts, bursts[1:]):
            assert later >= earlier - 1e-9

    def test_ablation_b2_gap_small(self, ablation):
        assert ablation.headline["mean_literal_gap_b2"] < 0.1

    def test_ablation_b1_b4_gaps_large(self, ablation):
        assert ablation.headline["mean_literal_gap_b1"] > 0.3
        assert ablation.headline["mean_literal_gap_b4"] > 0.3


class TestSpeedSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_experiment("speed_sweep", scale=0.5, seed=SEED)

    def test_one_row_per_speed(self, sweep):
        assert len(sweep.rows) == 6

    def test_driving_barely_hurts(self, sweep):
        # Xiao et al. [8]: ~100 km/h has limited influence.
        assert sweep.headline["driving_retention"] > 0.5

    def test_hsr_collapses(self, sweep):
        assert sweep.headline["collapse_factor_300"] > 1.3

    def test_model_monotone_decreasing(self, sweep):
        model = [row["model_throughput_pps"] for row in sweep.rows]
        assert model == sorted(model, reverse=True)


class TestVariantsExperiment:
    @pytest.fixture(scope="class")
    def variants(self):
        return run_experiment("variants", scale=0.3, seed=SEED)

    def test_newreno_fewer_timeouts(self, variants):
        assert (
            variants.headline["sim_newreno_timeouts"]
            <= variants.headline["sim_reno_timeouts"]
        )

    def test_model_rows_ordered(self, variants):
        for row in variants.rows:
            if row["source"] == "model":
                assert row["veno"] >= row["newreno"] >= row["reno"]
