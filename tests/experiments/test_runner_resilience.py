"""CLI resilience: `all` survives failing experiments; watchdog flags plumb."""

import pytest

import repro.experiments.runner as runner_module
from repro.experiments.registry import (
    ExperimentFailure,
    ExperimentResult,
    run_experiment_safe,
)
from repro.experiments.runner import main
from repro.robustness.watchdog import current_watchdog


class TestRunExperimentSafe:
    def test_success_returns_result(self):
        result, failure = run_experiment_safe("fig5")
        assert failure is None
        assert result.experiment_id == "fig5"

    def test_unknown_id_still_raises(self):
        with pytest.raises(KeyError):
            run_experiment_safe("fig99")

    def test_crash_becomes_failure_record(self, monkeypatch):
        import repro.experiments.registry as registry_module

        def exploding(scale=1.0, seed=2015):
            raise RuntimeError("boom")

        monkeypatch.setitem(
            registry_module._REGISTRY, "exploding", ("Exploding", exploding)
        )
        result, failure = run_experiment_safe("exploding")
        assert result is None
        assert failure.experiment_id == "exploding"
        assert failure.error_type == "RuntimeError"
        assert "boom" in failure.summary()


class TestAllCommandResilience:
    @pytest.fixture()
    def fake_registry(self, monkeypatch):
        """Three tiny fake experiments, the middle one broken."""

        def fake_list():
            return {"ok1": "first", "broken": "second", "ok2": "third"}

        def fake_safe(experiment_id, scale=1.0, seed=2015, workers=1, cc=None):
            if experiment_id == "broken":
                return None, ExperimentFailure(
                    experiment_id="broken",
                    error_type="SimulationError",
                    error="injected",
                )
            return (
                ExperimentResult(experiment_id=experiment_id, title=experiment_id),
                None,
            )

        monkeypatch.setattr(runner_module, "list_experiments", fake_list)
        monkeypatch.setattr(runner_module, "run_experiment_safe", fake_safe)

    def test_all_keeps_going_and_exits_nonzero(self, fake_registry, capsys):
        assert main(["all"]) == 1
        captured = capsys.readouterr()
        # Both healthy experiments still ran and printed.
        assert "ok1" in captured.out and "ok2" in captured.out
        # The failure is a one-line summary on stderr.
        assert "FAILED broken: SimulationError: injected" in captured.err

    def test_all_green_exits_zero(self, fake_registry, monkeypatch):
        monkeypatch.setattr(
            runner_module,
            "run_experiment_safe",
            lambda experiment_id, scale=1.0, seed=2015, workers=1, cc=None: (
                ExperimentResult(experiment_id=experiment_id, title=experiment_id),
                None,
            ),
        )
        assert main(["all"]) == 0

    def test_run_failure_exits_one(self, fake_registry, capsys):
        assert main(["run", "broken"]) == 1
        assert "FAILED broken" in capsys.readouterr().err


class TestWatchdogFlags:
    def test_flags_accepted_and_run_succeeds(self, capsys):
        code = main(
            ["run", "fig5", "--timeout-s", "600", "--max-events", "10000000"]
        )
        assert code == 0
        assert "Fig. 5" in capsys.readouterr().out

    def test_zero_disables_watchdog(self, monkeypatch, capsys):
        seen = {}

        def spying_safe(experiment_id, scale=1.0, seed=2015, workers=1, cc=None):
            seen["watchdog"] = current_watchdog()
            return (
                ExperimentResult(experiment_id=experiment_id, title=experiment_id),
                None,
            )

        monkeypatch.setattr(runner_module, "run_experiment_safe", spying_safe)
        assert main(["run", "fig5", "--timeout-s", "0", "--max-events", "0"]) == 0
        assert seen["watchdog"] is None

    def test_flags_install_ambient_watchdog(self, monkeypatch):
        seen = {}

        def spying_safe(experiment_id, scale=1.0, seed=2015, workers=1, cc=None):
            seen["watchdog"] = current_watchdog()
            return (
                ExperimentResult(experiment_id=experiment_id, title=experiment_id),
                None,
            )

        monkeypatch.setattr(runner_module, "run_experiment_safe", spying_safe)
        assert main(["run", "fig5", "--timeout-s", "120", "--max-events", "5000"]) == 0
        watchdog = seen["watchdog"]
        assert watchdog is not None
        assert watchdog.max_events == 5000
        assert watchdog.wall_clock_s == 120.0

    def test_chaos_flag_installs_fault_plan(self, monkeypatch):
        from repro.robustness.faults import current_fault_plan

        seen = {}

        def spying_safe(experiment_id, scale=1.0, seed=2015, workers=1, cc=None):
            seen["plan"] = current_fault_plan()
            return (
                ExperimentResult(experiment_id=experiment_id, title=experiment_id),
                None,
            )

        monkeypatch.setattr(runner_module, "run_experiment_safe", spying_safe)
        assert main(["run", "fig5", "--chaos", "1.5"]) == 0
        assert seen["plan"] is not None
        assert not seen["plan"].is_noop()
