"""Scenario campaigns and sweeps: the data-driven runner entry point."""

import json

import pytest

from repro.experiments.runner import main
from repro.experiments.scenario_run import (
    run_scenario_campaign,
    run_scenario_sweep,
    scenario_specs,
)
from repro.robustness.faults import FaultPlan, fault_scope
from repro.scenarios import resolve_scenario_ref

FLOWS = 2
DURATION = 4.0


class TestScenarioSpecs:
    def test_specs_are_seeded_independently(self):
        document = resolve_scenario_ref("hsr-china-mobile")
        specs = scenario_specs(document, flows=3, duration=DURATION, seed=7)
        assert len(specs) == 3
        assert len({spec.seed for spec in specs}) == 3
        assert [spec.flow_id for spec in specs] == [
            f"scenario/hsr-china-mobile/{i}" for i in range(3)
        ]

    def test_ambient_fault_plan_applies(self):
        document = resolve_scenario_ref("hsr-china-mobile")
        plan = FaultPlan.aggressive()
        with fault_scope(plan):
            (spec,) = scenario_specs(document, flows=1, duration=DURATION, seed=7)
        assert spec.scenario.channel_hook is not None
        clean = scenario_specs(document, flows=1, duration=DURATION, seed=7)[0]
        assert clean.scenario.channel_hook is None


class TestCampaign:
    def test_campaign_result_shape(self):
        result = run_scenario_campaign(
            "driving-china-telecom", flows=FLOWS, duration=DURATION, seed=5
        )
        assert result.experiment_id == "scenario:driving-china-telecom"
        (row,) = result.rows
        assert row["scenario"] == "driving-china-telecom"
        assert row["provider"] == "China Telecom"
        assert row["flows"] == FLOWS
        assert row["failed"] == 0
        assert row["throughput_pps"] > 0

    def test_campaign_accepts_file_ref(self, tmp_path):
        from repro.scenarios import document_to_yaml

        document = resolve_scenario_ref("stationary-china-mobile")
        path = tmp_path / "copy.yaml"
        path.write_text(document_to_yaml(document), encoding="utf-8")
        result = run_scenario_campaign(
            str(path), flows=1, duration=DURATION, seed=5
        )
        assert result.experiment_id == "scenario:stationary-china-mobile"


class TestSweep:
    def test_sweep_compares_scenarios(self):
        result = run_scenario_sweep(
            ["hsr-china-mobile", "stationary-china-mobile"],
            flows=FLOWS,
            duration=DURATION,
            seed=5,
        )
        assert [row["scenario"] for row in result.rows] == [
            "hsr-china-mobile",
            "stationary-china-mobile",
        ]
        assert result.headline["scenarios"] == 2
        best = result.headline["best_pps"]
        worst = result.headline["worst_pps"]
        assert best >= worst > 0


class TestRunnerCli:
    def test_run_scenario(self, capsys):
        code = main(
            ["run", "--scenario", "driving-china-telecom",
             "--flows", "2", "--duration", "4", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "scenario:driving-china-telecom"

    def test_run_rejects_both_id_and_scenario(self, capsys):
        code = main(["run", "table1", "--scenario", "hsr-china-mobile"])
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_run_requires_something(self, capsys):
        assert main(["run"]) == 2

    def test_sweep_cli(self, capsys):
        code = main(
            ["sweep", "hsr-china-mobile", "stationary-china-mobile",
             "--flows", "1", "--duration", "4", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["rows"]) == 2

    def test_sweep_without_refs_errors(self, capsys):
        assert main(["sweep"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_unknown_scenario_exits_2(self, capsys):
        code = main(["run", "--scenario", "no-such-scenario"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
