"""Window state-machine tests for the CC zoo senders.

Each variant is exercised two ways: hand-driven (a sender wired to a
no-op link, fed ACKs directly, so window arithmetic is assertable
exactly) and behaviourally (whole flows under seeded loss, checking the
variant-defining shape: CUBIC's convex probe, Compound's dwnd collapse,
Relentless's proportional decrease, BBR's loss tolerance).
"""

import pytest

from repro.simulator import (
    BbrSender,
    BernoulliLoss,
    CompoundSender,
    ConnectionConfig,
    CubicSender,
    NoLoss,
    RelentlessSender,
    Simulator,
    TraceDrivenLoss,
    run_flow,
)
from repro.simulator.channel import Link
from repro.simulator.metrics import AckRecord, FlowLog
from repro.simulator.packet import AckSegment
from repro.simulator.sender_base import (
    _CONGESTION_AVOIDANCE,
    _FAST_RECOVERY,
    _MIN_SSTHRESH,
)
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream


def config(**overrides) -> ConnectionConfig:
    base = dict(duration=30.0, wmax=32.0)
    base.update(overrides)
    return ConnectionConfig(**base)


def _hand_sender(sender_cls, initial_cwnd=8.0, wmax=32.0, **kwargs):
    """A sender wired to a swallow-everything link, pumped once."""
    sim = Simulator()
    log = FlowLog()
    link = Link(
        sim, delay=0.03, loss_model=NoLoss(),
        deliver=lambda segment, time: None,
    )
    sender = sender_cls(
        sim, link, log, wmax=wmax, initial_cwnd=initial_cwnd, **kwargs
    )
    sender.start()
    sim.run(until=0.1)
    return sim, sender, log


def _deliver_ack(sim, sender, log, ack_seq, tid):
    log.record_ack_send(
        AckRecord(transmission_id=tid, ack_seq=ack_seq, send_time=sim.now)
    )
    sender.on_ack(
        AckSegment(ack_seq=ack_seq, transmission_id=tid, send_time=sim.now),
        sim.now,
    )


def _force_fast_recovery(sim, sender, log):
    for tid in range(3):
        _deliver_ack(sim, sender, log, ack_seq=0, tid=tid)
    assert sender.phase == _FAST_RECOVERY


def _bernoulli_flow(variant, rate=0.01, duration=40.0, seed=5, **kwargs):
    rng = RngStream(seed, variant)
    return run_flow(
        config(duration=duration),
        data_loss=BernoulliLoss(rate, rng.spawn("data")),
        ack_loss=NoLoss(),
        seed=seed,
        variant=variant,
        **kwargs,
    )


class TestCubicWindowLaw:
    def test_curve_is_convex_past_k_and_hits_plateau_at_k(self):
        _, sender, _ = _hand_sender(CubicSender)
        sender._w_last_max = 24.0
        sender._k = 2.0
        # W(K) = W_max exactly; second differences positive (convex)
        # beyond the plateau.
        assert sender._cubic_target(2.0) == pytest.approx(24.0)
        samples = [sender._cubic_target(2.0 + 0.5 * i) for i in range(5)]
        diffs = [b - a for a, b in zip(samples, samples[1:])]
        assert all(d2 > d1 for d1, d2 in zip(diffs, diffs[1:]))

    def test_concave_approach_below_plateau(self):
        _, sender, _ = _hand_sender(CubicSender)
        sender._w_last_max = 24.0
        sender._k = 2.0
        samples = [sender._cubic_target(0.5 * i) for i in range(4)]
        diffs = [b - a for a, b in zip(samples, samples[1:])]
        # Still growing, but slowing down on the way to the plateau.
        assert all(d > 0 for d in diffs)
        assert all(d2 < d1 for d1, d2 in zip(diffs, diffs[1:]))

    def test_loss_takes_beta_decrease_and_records_plateau(self):
        sim, sender, log = _hand_sender(CubicSender, initial_cwnd=20.0)
        sender.ssthresh = 4.0  # force congestion avoidance
        sender._set_phase(_CONGESTION_AVOIDANCE)
        _force_fast_recovery(sim, sender, log)
        assert sender.ssthresh == pytest.approx(20.0 * 0.7)
        assert sender._w_last_max == pytest.approx(20.0)
        assert sender._epoch_start == -1.0  # epoch closed, reopens on ACK

    def test_fast_convergence_releases_ceiling_early(self):
        sim, sender, log = _hand_sender(CubicSender, initial_cwnd=10.0)
        sender._w_last_max = 24.0  # losing again below the old plateau
        sender.ssthresh = 4.0
        sender._set_phase(_CONGESTION_AVOIDANCE)
        _force_fast_recovery(sim, sender, log)
        assert sender._w_last_max == pytest.approx(10.0 * (2.0 - 0.7) / 2.0)

    def test_tcp_friendly_region_floors_growth(self):
        _, sender, _ = _hand_sender(CubicSender, initial_cwnd=8.0)
        sender._w_last_max = 100.0  # deep concave region: cubic term tiny
        sender._epoch_start = 0.0
        sender._k = 50.0
        sender._w_est = 12.0  # AIMD estimate already ahead
        grown = sender._ca_window(1)
        assert grown >= 12.0

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigurationError):
            _hand_sender(CubicSender, beta=1.5)


class TestCompoundDualWindow:
    def test_dwnd_grows_while_queue_empty(self):
        # The binomial increase alpha*win^k - 1 is positive only past
        # win = (1/alpha)^(1/k) = 16; start above it.
        sim, sender, log = _hand_sender(
            CompoundSender, initial_cwnd=24.0, wmax=64.0
        )
        sender.ssthresh = 4.0
        sender._set_phase(_CONGESTION_AVOIDANCE)
        sender._base_rtt = 0.1
        sender._last_rtt = 0.1  # diff = 0 < gamma
        sender._round_end = 0
        before = sender.dwnd
        _deliver_ack(sim, sender, log, ack_seq=2, tid=0)
        assert sender.dwnd > before

    def test_dwnd_drains_on_queue_buildup(self):
        sim, sender, log = _hand_sender(
            CompoundSender, initial_cwnd=8.0, wmax=64.0, gamma=2.0
        )
        sender.ssthresh = 4.0
        sender._set_phase(_CONGESTION_AVOIDANCE)
        sender.dwnd = 10.0
        sender._base_rtt = 0.05
        sender._last_rtt = 0.5  # diff = win * 0.9 >> gamma
        sender._round_end = 0
        _deliver_ack(sim, sender, log, ack_seq=2, tid=0)
        assert sender.dwnd < 10.0

    def test_send_window_is_compound_and_clamped(self):
        _, sender, _ = _hand_sender(CompoundSender, initial_cwnd=8.0)
        sender.dwnd = 10.0
        assert sender._send_window() == 18.0
        sender.dwnd = 100.0
        assert sender._send_window() == 32.0  # wmax clamp

    def test_loss_collapses_dwnd_to_compound_share(self):
        sim, sender, log = _hand_sender(CompoundSender, initial_cwnd=16.0)
        sender.ssthresh = 4.0
        sender._set_phase(_CONGESTION_AVOIDANCE)
        sender.dwnd = 8.0
        _force_fast_recovery(sim, sender, log)
        # win = 24; cwnd halves to 8; dwnd = win*(1-beta) - ssthresh = 4.
        assert sender.ssthresh == 8.0
        assert sender.dwnd == pytest.approx(24.0 * 0.5 - 8.0)

    def test_rto_discards_delay_window(self):
        _, sender, _ = _hand_sender(CompoundSender, initial_cwnd=16.0)
        sender.dwnd = 8.0
        sender._on_timeout_collapse()
        assert sender.dwnd == 0.0


class TestRelentlessDecrease:
    def test_loss_decrements_instead_of_halving(self):
        sim, sender, log = _hand_sender(RelentlessSender, initial_cwnd=8.0)
        _force_fast_recovery(sim, sender, log)
        assert sender.ssthresh == 7.0  # 8 - 1, not 8/2
        assert sender.cwnd == 10.0  # ssthresh + 3 dupack inflation

    def test_each_partial_ack_charges_another_decrement(self):
        sim, sender, log = _hand_sender(RelentlessSender, initial_cwnd=8.0)
        _force_fast_recovery(sim, sender, log)
        _deliver_ack(sim, sender, log, ack_seq=3, tid=50)  # partial ACK
        assert sender.phase == _FAST_RECOVERY
        assert sender.ssthresh == 6.0

    def test_decrement_floor_is_min_ssthresh(self):
        sim, sender, log = _hand_sender(
            RelentlessSender, initial_cwnd=2.5, decrement=5.0
        )
        _force_fast_recovery(sim, sender, log)
        assert sender.ssthresh == _MIN_SSTHRESH

    def test_beats_reno_under_random_loss(self):
        reno = _bernoulli_flow("reno")
        relentless = _bernoulli_flow("relentless")
        assert relentless.throughput > reno.throughput


class TestBbrStateMachine:
    def test_starts_in_startup_with_no_model(self):
        _, sender, _ = _hand_sender(BbrSender)
        assert sender.mode == "startup"
        assert sender._model_cwnd() is None

    def test_min_rtt_tracks_minimum_until_expiry(self):
        _, sender, _ = _hand_sender(BbrSender, probe_rtt_interval=10.0)
        sender._on_rtt_sample(0.2, now=1.0)
        sender._on_rtt_sample(0.1, now=2.0)
        sender._on_rtt_sample(0.3, now=3.0)
        assert sender._min_rtt == 0.1
        sender._on_rtt_sample(0.3, now=13.0)  # stale sample expired
        assert sender._min_rtt == 0.3

    def test_model_cwnd_clamped_between_floor_and_wmax(self):
        _, sender, _ = _hand_sender(BbrSender, wmax=32.0)
        sender._min_rtt = 0.1
        sender._max_bw = 1.0  # tiny BDP -> floor
        assert sender._model_cwnd() == 4.0
        sender._max_bw = 10_000.0  # huge BDP -> wmax
        assert sender._model_cwnd() == 32.0

    def test_startup_exits_after_three_flat_rounds(self):
        _, sender, _ = _hand_sender(BbrSender)
        sender._round_max_bw = 100.0
        sender._on_round_end()
        assert sender.mode == "startup"
        for _ in range(3):  # no further growth
            sender._round_max_bw = 100.0
            sender._on_round_end()
        assert sender.mode == "drain"

    def test_probe_rtt_dips_then_reenters_probe_bw(self):
        _, sender, _ = _hand_sender(BbrSender, probe_rtt_duration=0.2)
        sender._min_rtt = 0.1
        sender._max_bw = 500.0
        sender._enter_probe_bw(now=0.0)
        sender._min_rtt_stamp = 0.0
        sender._advance_mode(now=11.0)  # min_rtt stale
        assert sender.mode == "probe_rtt"
        assert sender._model_cwnd() == 4.0  # the dip
        sender._advance_mode(now=11.3)  # dip duration elapsed
        assert sender.mode == "probe_bw"

    def test_loss_does_not_halve_the_model(self):
        _, sender, _ = _hand_sender(BbrSender)
        sender._min_rtt = 0.1
        sender._max_bw = 200.0
        sender._enter_probe_bw(now=0.0)
        model = sender._model_cwnd()
        sender._on_loss_event()
        assert sender.cwnd == pytest.approx(model)

    def test_beats_reno_under_random_loss(self):
        reno = _bernoulli_flow("reno")
        bbr = _bernoulli_flow("bbr")
        assert bbr.throughput > 1.5 * reno.throughput


class TestZooBehaviour:
    @pytest.mark.parametrize(
        "variant", ["cubic", "bbr", "compound", "relentless"]
    )
    def test_clean_channel_completes_in_order(self, variant):
        result = run_flow(
            config(duration=10.0), NoLoss(), NoLoss(), seed=3, variant=variant
        )
        assert result.throughput > 0.0
        delivered = [
            r.seq for r in result.log.data_packets if r.arrival_time is not None
        ]
        assert sorted(set(delivered)) == list(range(len(set(delivered))))

    @pytest.mark.parametrize(
        "variant", ["cubic", "bbr", "compound", "relentless"]
    )
    def test_recovers_from_isolated_loss(self, variant):
        result = run_flow(
            config(b=1, duration=20.0),
            data_loss=TraceDrivenLoss([60]),
            ack_loss=NoLoss(),
            seed=2,
            variant=variant,
        )
        retx = [r for r in result.log.data_packets if r.is_retransmission]
        assert len(retx) >= 1
        delivered = {
            r.seq for r in result.log.data_packets if r.arrival_time is not None
        }
        assert delivered == set(range(len(delivered)))

    def test_cubic_competitive_with_reno_between_losses(self):
        # CUBIC's convex probe refills the window at least as fast as
        # Reno's one-per-RTT; the channels are seeded per-variant, so
        # allow a small sampling margin.
        cubic = _bernoulli_flow("cubic", rate=0.002, duration=60.0)
        reno = _bernoulli_flow("reno", rate=0.002, duration=60.0)
        assert cubic.throughput >= 0.9 * reno.throughput
