"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulator.engine import Simulator
from repro.util.errors import BudgetExceededError, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(1.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(1.0, lambda: fired.append("keep"))
        drop = sim.schedule(2.0, lambda: fired.append("drop"))
        drop.cancel()
        sim.run()
        assert fired == ["keep"]


class TestLiveEvents:
    def test_counts_only_uncancelled(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        assert sim.live_events == 4
        assert sim.pending_events == 4
        handles[1].cancel()
        handles[2].cancel()
        assert sim.live_events == 2
        # Cancelled events stay queued until popped, so the raw queue
        # length does not shrink.
        assert sim.pending_events == 4

    def test_drains_to_zero_after_run(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.live_events == 0
        assert sim.pending_events == 0

    def test_reported_in_budget_diagnostics(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        with pytest.raises(BudgetExceededError) as excinfo:
            sim.run(event_budget=2)
        # The tripped event is pushed back, so 3 of the 5 remain live.
        assert "3 live events pending" in str(excinfo.value)
        assert sim.live_events == 3


class TestRunControl:
    def test_until_horizon_stops_clock_exactly(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=3.0)
        assert fired == [1]
        assert sim.now == 3.0

    def test_later_events_survive_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=3.0)
        sim.run(until=10.0)
        assert fired == [5]

    def test_until_past_all_events_advances_clock(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=9.0)
        assert sim.now == 9.0

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_stop_condition(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(stop_condition=lambda: len(fired) >= 3)
        assert fired == [0, 1, 2]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_empty_run_is_noop(self):
        sim = Simulator()
        sim.run()
        assert sim.now == 0.0


class TestScheduleCall:
    """The payload fast path links use to deliver packets."""

    def test_action_receives_payload_and_fire_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_call(1.5, lambda pkt, time: seen.append((pkt, time)), "pkt")
        sim.run()
        assert seen == [("pkt", 1.5)]

    def test_none_is_a_legitimate_payload(self):
        sim = Simulator()
        seen = []
        sim.schedule_call(1.0, lambda pkt, time: seen.append(pkt), None)
        sim.run()
        assert seen == [None]

    def test_interleaves_deterministically_with_schedule(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("plain"))
        sim.schedule_call(1.0, lambda pkt, time: fired.append(pkt), "payload")
        sim.schedule(1.0, lambda: fired.append("last"))
        sim.run()
        assert fired == ["plain", "payload", "last"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_call(-0.1, lambda pkt, time: None, "x")

    def test_counts_as_live_and_processed(self):
        sim = Simulator()
        sim.schedule_call(1.0, lambda pkt, time: None, "x")
        assert sim.live_events == 1
        sim.run()
        assert sim.live_events == 0
        assert sim.events_processed == 1

    def test_survives_until_horizon(self):
        sim = Simulator()
        seen = []
        sim.schedule_call(2.0, lambda pkt, time: seen.append(pkt), "late")
        sim.run(until=1.0)
        assert seen == [] and sim.now == 1.0
        sim.run()
        assert seen == ["late"] and sim.now == 2.0

    def test_dispatched_by_guarded_run(self):
        # Budgets force the guarded loop; payload events must still
        # receive (payload, fire_time).
        sim = Simulator()
        seen = []
        for index in range(3):
            sim.schedule_call(float(index + 1), lambda pkt, time: seen.append((pkt, time)), index)
        sim.run(max_events=2)
        assert seen == [(0, 1.0), (1, 2.0)]
        sim.run()
        assert seen[-1] == (2, 3.0)


class TestScheduleCallsAt:
    """The batch scheduler burst delivery rides on."""

    def test_each_payload_fires_at_its_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_calls_at(
            [1.0, 2.0, 3.0],
            lambda pkt, time: seen.append((pkt, time)),
            ["a", "b", "c"],
        )
        sim.run()
        assert seen == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_ties_fire_in_list_order(self):
        # Batch entries get consecutive sequence numbers in list order,
        # so same-time events keep their submission order — the burst
        # path's equivalence to per-packet scheduling depends on it.
        sim = Simulator()
        seen = []
        sim.schedule_calls_at(
            [1.0, 1.0, 1.0], lambda pkt, time: seen.append(pkt), [0, 1, 2]
        )
        sim.run()
        assert seen == [0, 1, 2]

    def test_interleaves_with_scalar_scheduling(self):
        # A batch submitted between two scalar calls slots between them
        # exactly as three scalar schedule_call invocations would.
        batched = Simulator()
        fired_batched = []
        batched.schedule_call(1.0, lambda pkt, t: fired_batched.append(pkt), "first")
        batched.schedule_calls_at(
            [1.0, 1.0], lambda pkt, t: fired_batched.append(pkt), ["x", "y"]
        )
        batched.schedule_call(1.0, lambda pkt, t: fired_batched.append(pkt), "last")

        scalar = Simulator()
        fired_scalar = []
        for payload in ("first", "x", "y", "last"):
            scalar.schedule_call(1.0, lambda pkt, t: fired_scalar.append(pkt), payload)

        batched.run()
        scalar.run()
        assert fired_batched == fired_scalar

    def test_length_mismatch_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_calls_at([1.0, 2.0], lambda pkt, time: None, ["only"])

    def test_past_time_rejected_without_partial_batch(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.now == 1.0
        with pytest.raises(SimulationError):
            sim.schedule_calls_at(
                [2.0, 0.5], lambda pkt, time: None, ["ok", "stale"]
            )
        # The valid head was already pushed; it must still fire once.
        fired = []
        sim.schedule_calls_at([3.0], lambda pkt, time: fired.append(pkt), ["tail"])
        sim.run()
        assert sim.events_processed == 3

    def test_empty_batch_is_a_noop(self):
        sim = Simulator()
        sim.schedule_calls_at([], lambda pkt, time: None, [])
        assert sim.live_events == 0

    def test_instrumented_simulator_counts_batch(self):
        from repro.telemetry import CountingTelemetry

        telemetry = CountingTelemetry()
        sim = Simulator(telemetry=telemetry)
        sim.schedule_calls_at(
            [1.0, 2.0, 3.0], lambda pkt, time: None, ["a", "b", "c"]
        )
        assert telemetry.events_scheduled == 3
        sim.run()
        assert telemetry.events_fired == 3
