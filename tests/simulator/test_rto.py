"""Unit tests for the RFC 6298 RTO estimator."""

import pytest

from repro.simulator.rto import MAX_BACKOFF_FACTOR, RtoEstimator
from repro.util.errors import ConfigurationError


class TestInitialState:
    def test_initial_rto_before_any_sample(self):
        rto = RtoEstimator(initial_rto=1.0)
        assert rto.current_rto == pytest.approx(1.0)

    def test_initial_rto_respects_clamp(self):
        rto = RtoEstimator(initial_rto=100.0, max_rto=60.0)
        assert rto.base_rto == pytest.approx(60.0)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            RtoEstimator(initial_rto=0.0)
        with pytest.raises(ConfigurationError):
            RtoEstimator(min_rto=2.0, max_rto=1.0)


class TestMeasurement:
    def test_first_sample_initialises_srtt(self):
        rto = RtoEstimator()
        rto.on_measurement(0.1)
        assert rto.srtt == pytest.approx(0.1)
        assert rto.rttvar == pytest.approx(0.05)

    def test_rfc_first_sample_rto(self):
        rto = RtoEstimator(min_rto=0.0001)
        rto.on_measurement(0.1)
        # RTO = SRTT + max(G, 4*RTTVAR) = 0.1 + 0.2
        assert rto.base_rto == pytest.approx(0.3)

    def test_smoothing_converges_to_constant_rtt(self):
        rto = RtoEstimator(min_rto=0.01)
        for _ in range(200):
            rto.on_measurement(0.08)
        assert rto.srtt == pytest.approx(0.08, rel=1e-3)
        assert rto.rttvar < 1e-3

    def test_variance_reacts_to_jitter(self):
        steady = RtoEstimator(min_rto=0.01)
        jittery = RtoEstimator(min_rto=0.01)
        for i in range(100):
            steady.on_measurement(0.1)
            jittery.on_measurement(0.05 if i % 2 == 0 else 0.15)
        assert jittery.base_rto > steady.base_rto

    def test_min_rto_floor(self):
        rto = RtoEstimator(min_rto=0.2)
        for _ in range(100):
            rto.on_measurement(0.001)
        assert rto.base_rto >= 0.2

    def test_rejects_nonpositive_sample(self):
        with pytest.raises(ConfigurationError):
            RtoEstimator().on_measurement(0.0)


class TestBackoff:
    def test_each_timeout_doubles(self):
        rto = RtoEstimator(initial_rto=1.0)
        values = [rto.current_rto]
        for _ in range(3):
            rto.on_timeout()
            values.append(rto.current_rto)
        assert values == pytest.approx([1.0, 2.0, 4.0, 8.0])

    def test_backoff_capped_at_64x(self):
        rto = RtoEstimator(initial_rto=1.0, max_rto=100.0)
        for _ in range(20):
            rto.on_timeout()
        assert rto.current_rto == pytest.approx(64.0)
        assert 2**rto.backoff_exponent == MAX_BACKOFF_FACTOR

    def test_recovery_resets_backoff(self):
        rto = RtoEstimator(initial_rto=1.0)
        for _ in range(4):
            rto.on_timeout()
        rto.on_recovery()
        assert rto.backoff_exponent == 0
        assert rto.current_rto == pytest.approx(1.0)

    def test_backoff_applies_to_measured_base(self):
        rto = RtoEstimator(min_rto=0.0001)
        rto.on_measurement(0.1)  # base 0.3
        rto.on_timeout()
        assert rto.current_rto == pytest.approx(0.6)
