"""Tests for MPTCP duplex/backup simulation."""

import pytest

from repro.exec import FlowSpec
from repro.simulator.channel import BernoulliLoss, NoLoss, TraceDrivenLoss
from repro.simulator.connection import ConnectionConfig, run_flow
from repro.simulator.mptcp import run_backup, run_duplex
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream


def config(**overrides) -> ConnectionConfig:
    base = dict(duration=30.0, wmax=32.0)
    base.update(overrides)
    return ConnectionConfig(**base)


def spec(seed=0, *, data_loss=None, ack_loss=None, backup=None, **overrides):
    return FlowSpec(
        config=config(**overrides),
        data_loss=data_loss if data_loss is not None else NoLoss(),
        ack_loss=ack_loss if ack_loss is not None else NoLoss(),
        redundant_data_loss=backup,
        seed=seed,
    )


class TestDuplex:
    def test_aggregate_is_sum_of_subflows(self):
        rng = RngStream(1)
        result = run_duplex(
            spec(1, data_loss=BernoulliLoss(0.01, rng.spawn("d1"))),
            spec(2, data_loss=BernoulliLoss(0.01, rng.spawn("d2"))),
        )
        assert result.throughput == pytest.approx(
            result.primary.throughput + result.secondary.throughput
        )

    def test_duplex_beats_single_flow(self):
        rng = RngStream(2)
        single = run_flow(config(), BernoulliLoss(0.01, rng.spawn("s")), NoLoss(), seed=2)
        duplex = run_duplex(
            spec(2, data_loss=BernoulliLoss(0.01, rng.spawn("d1"))),
            spec(3, data_loss=BernoulliLoss(0.01, rng.spawn("d2"))),
        )
        assert duplex.throughput > 1.5 * single.throughput

    def test_mode_label(self):
        result = run_duplex(spec(duration=2.0), spec(duration=2.0))
        assert result.mode == "duplex"
        assert result.secondary is not None


class TestBackup:
    def test_backup_shortens_recovery(self):
        # Data packets 20..26 lost; on the plain flow the first several
        # retransmissions are also lost (indices continue through the
        # script), while the backup path is clean, so the doubled
        # retransmission ends the timeout sequence at the first RTO.
        plain = run_flow(
            config(duration=60.0),
            data_loss=TraceDrivenLoss(range(20, 26)),
            ack_loss=NoLoss(),
            seed=3,
        )
        backed = run_backup(
            spec(3, duration=60.0,
                 data_loss=TraceDrivenLoss(range(20, 26)), backup=NoLoss())
        )
        assert len(backed.primary.log.timeouts) <= len(plain.log.timeouts)
        assert backed.throughput >= plain.throughput

    def test_backup_mode_label(self):
        result = run_backup(spec(duration=2.0, backup=NoLoss()))
        assert result.mode == "backup"
        assert result.secondary is None

    def test_backup_requires_redundant_channel(self):
        with pytest.raises(ConfigurationError, match="redundant_data_loss"):
            run_backup(spec(duration=2.0))

    def test_backup_copies_logged_on_alternate_subflow(self):
        result = run_backup(
            spec(4, duration=30.0,
                 data_loss=TraceDrivenLoss(range(20, 26)), backup=NoLoss())
        )
        alternate = [
            record for record in result.primary.log.data_packets
            if record.subflow_id == 1
        ]
        assert alternate, "expected doubled retransmissions on subflow 1"
        assert all(record.in_timeout_recovery for record in alternate)

    def test_backup_with_lossy_backup_still_positive(self):
        rng = RngStream(9)
        result = run_backup(
            spec(5, duration=30.0,
                 data_loss=BernoulliLoss(0.02, rng.spawn("d")),
                 backup=BernoulliLoss(0.3, rng.spawn("b")))
        )
        assert result.throughput > 0.0
