"""Unit tests for the TCP receiver (cumulative + delayed ACKs)."""

import pytest

from repro.simulator.channel import Link
from repro.simulator.engine import Simulator
from repro.simulator.metrics import FlowLog
from repro.simulator.packet import Segment
from repro.simulator.receiver import Receiver
from repro.util.errors import ConfigurationError


class Harness:
    """Receiver + ACK sink wired to a real simulator."""

    def __init__(self, b=2, delack_timeout=0.2):
        self.sim = Simulator()
        self.received_acks = []
        self.log = FlowLog()
        ack_link = Link(
            self.sim, delay=0.01,
            deliver=lambda ack, t: self.received_acks.append(ack),
        )
        self.receiver = Receiver(
            self.sim, ack_link, self.log, b=b, delack_timeout=delack_timeout
        )
        self._tid = 0

    def deliver(self, seq, at=None):
        time = self.sim.now if at is None else at
        segment = Segment(seq=seq, transmission_id=self._tid, send_time=time)
        self.log.record_data_send(
            __import__("repro.simulator.metrics", fromlist=["DataPacketRecord"]).DataPacketRecord(
                transmission_id=self._tid, seq=seq, send_time=time
            )
        )
        self._tid += 1
        self.receiver.on_data(segment, time)


class TestInOrderDelivery:
    def test_ack_every_b_packets(self):
        h = Harness(b=2)
        h.deliver(0)
        h.deliver(1)
        h.sim.run()
        assert len(h.received_acks) == 1
        assert h.received_acks[0].ack_seq == 2

    def test_first_packet_ack_delayed_until_timer(self):
        h = Harness(b=2, delack_timeout=0.2)
        h.deliver(0)
        h.sim.run()
        # No companion packet arrived: the delayed-ACK timer fires.
        assert len(h.received_acks) == 1
        assert h.received_acks[0].ack_seq == 1
        assert h.received_acks[0].send_time == pytest.approx(0.2)

    def test_b1_acks_every_packet(self):
        h = Harness(b=1)
        for seq in range(4):
            h.deliver(seq)
        h.sim.run()
        assert [a.ack_seq for a in h.received_acks] == [1, 2, 3, 4]

    def test_cumulative_ack_value(self):
        h = Harness(b=2)
        for seq in range(6):
            h.deliver(seq)
        h.sim.run()
        assert [a.ack_seq for a in h.received_acks] == [2, 4, 6]

    def test_delivered_payload_count(self):
        h = Harness()
        for seq in range(5):
            h.deliver(seq)
        assert h.log.delivered_payloads == 5


class TestOutOfOrder:
    def test_gap_triggers_immediate_dup_ack(self):
        h = Harness(b=2)
        h.deliver(0)
        h.deliver(1)  # ack 2 sent
        h.deliver(3)  # gap: seq 2 missing -> dup ACK of 2, immediately
        h.sim.run()
        dups = [a for a in h.received_acks if a.is_duplicate]
        assert len(dups) == 1
        assert dups[0].ack_seq == 2

    def test_gap_fill_advances_past_buffer(self):
        h = Harness(b=1)
        h.deliver(0)
        h.deliver(2)
        h.deliver(3)
        h.deliver(1)  # fills the gap -> cumulative ACK jumps to 4
        h.sim.run()
        assert h.received_acks[-1].ack_seq == 4

    def test_buffered_payloads_counted_once(self):
        h = Harness(b=1)
        h.deliver(0)
        h.deliver(2)
        h.deliver(1)
        assert h.log.delivered_payloads == 3


class TestDuplicatePayloads:
    def test_duplicate_detected(self):
        h = Harness(b=1)
        h.deliver(0)
        h.deliver(0)  # spurious retransmission arrives
        assert h.log.duplicate_payloads == 1

    def test_duplicate_triggers_reack(self):
        h = Harness(b=1)
        h.deliver(0)
        h.deliver(0)
        h.sim.run()
        # Both the original ACK and the resynchronising re-ACK carry
        # the same cumulative value.
        assert [a.ack_seq for a in h.received_acks] == [1, 1]

    def test_out_of_order_duplicate_detected(self):
        h = Harness(b=1)
        h.deliver(2)
        h.deliver(2)
        assert h.log.duplicate_payloads == 1


class TestDelayedAckTimer:
    def test_timer_cancelled_by_second_packet(self):
        h = Harness(b=2, delack_timeout=0.5)
        h.deliver(0)
        h.sim.schedule(0.1, lambda: h.deliver(1))
        h.sim.run()
        assert len(h.received_acks) == 1
        # ACK went out at 0.1 (b reached), not 0.5 (timer).
        assert h.received_acks[0].send_time == pytest.approx(0.1)

    def test_timer_does_not_fire_without_pending_data(self):
        h = Harness(b=2)
        h.deliver(0)
        h.deliver(1)
        h.sim.run()
        assert len(h.received_acks) == 1  # no stray timer ACK


class TestValidation:
    def test_rejects_bad_b(self):
        sim = Simulator()
        link = Link(sim, delay=0.01, deliver=lambda *a: None)
        with pytest.raises(ConfigurationError):
            Receiver(sim, link, FlowLog(), b=0)

    def test_rejects_bad_delack_timeout(self):
        sim = Simulator()
        link = Link(sim, delay=0.01, deliver=lambda *a: None)
        with pytest.raises(ConfigurationError):
            Receiver(sim, link, FlowLog(), delack_timeout=0.0)
