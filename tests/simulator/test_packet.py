"""Unit tests for packet dataclasses and the free-list PacketPool."""

import pytest

from repro.simulator.packet import AckSegment, PacketPool, Segment


class TestSegments:
    def test_segment_defaults(self):
        segment = Segment(seq=3, transmission_id=7, send_time=1.5)
        assert not segment.is_retransmission
        assert not segment.in_timeout_recovery
        assert segment.subflow_id == 0

    def test_ack_defaults(self):
        ack = AckSegment(ack_seq=9, transmission_id=2, send_time=0.25)
        assert not ack.is_duplicate
        assert ack.subflow_id == 0


class TestPacketPool:
    def test_acquire_returns_fresh_objects_when_empty(self):
        pool = PacketPool()
        first = pool.segment(0, 0, 0.0, False, False, 0)
        second = pool.segment(1, 1, 0.1, False, False, 0)
        assert first is not second
        assert pool.free_segments == 0

    def test_release_then_acquire_reuses_the_object(self):
        pool = PacketPool()
        segment = pool.segment(0, 0, 0.0, False, False, 0)
        pool.release_segment(segment)
        assert pool.free_segments == 1
        again = pool.segment(5, 9, 2.5, True, True, 1)
        assert again is segment
        assert pool.free_segments == 0

    def test_reused_segment_fields_fully_overwritten(self):
        # Every field must be reassigned on reuse — a stale
        # is_retransmission flag from the packet's previous life would
        # silently corrupt RTT sampling (Karn's rule keys off it).
        pool = PacketPool()
        stale = pool.segment(1, 2, 3.0, True, True, 4)
        pool.release_segment(stale)
        fresh = pool.segment(0, 0, 0.0, False, False, 0)
        assert (
            fresh.seq,
            fresh.transmission_id,
            fresh.send_time,
            fresh.is_retransmission,
            fresh.in_timeout_recovery,
            fresh.subflow_id,
        ) == (0, 0, 0.0, False, False, 0)

    def test_ack_free_list_round_trip(self):
        pool = PacketPool()
        ack = pool.ack(3, 1, 0.5, True, 2)
        pool.release_ack(ack)
        assert pool.free_acks == 1
        again = pool.ack(0, 0, 0.0, False, 0)
        assert again is ack
        assert not again.is_duplicate

    def test_release_dispatches_on_type(self):
        pool = PacketPool()
        segment = pool.segment(0, 0, 0.0, False, False, 0)
        ack = pool.ack(0, 0, 0.0, False, 0)
        pool.release(segment)
        pool.release(ack)
        assert pool.free_segments == 1
        assert pool.free_acks == 1

    def test_release_accepts_foreign_packets(self):
        # Packets built outside the pool (the MPTCP redundant copy)
        # may still be handed back by a shared link release callback.
        pool = PacketPool()
        pool.release(Segment(seq=0, transmission_id=0, send_time=0.0))
        pool.release(AckSegment(ack_seq=0, transmission_id=0, send_time=0.0))
        assert pool.free_segments == 1
        assert pool.free_acks == 1

    def test_pools_are_independent(self):
        left, right = PacketPool(), PacketPool()
        left.release_segment(Segment(seq=0, transmission_id=0, send_time=0.0))
        assert right.free_segments == 0
