"""Tests for the bandwidth-limited bottleneck link."""

import pytest

from repro.simulator import ConnectionConfig, NoLoss, run_flow
from repro.simulator.bottleneck import BottleneckLink
from repro.simulator.channel import TraceDrivenLoss
from repro.simulator.engine import Simulator
from repro.util.errors import ConfigurationError


class TestUnit:
    def test_serialisation_spacing(self):
        sim = Simulator()
        arrivals = []
        link = BottleneckLink(
            sim, delay=0.01, rate_pps=10.0,
            deliver=lambda pkt, t: arrivals.append(t),
        )
        for _ in range(3):
            link.send("x")
        sim.run()
        # service times 0.1, 0.2, 0.3 plus 0.01 propagation
        assert arrivals == pytest.approx([0.11, 0.21, 0.31])

    def test_overflow_drops(self):
        sim = Simulator()
        arrivals, drops = [], []
        link = BottleneckLink(
            sim, delay=0.01, rate_pps=10.0, buffer_packets=2,
            deliver=lambda pkt, t: arrivals.append(pkt),
            on_drop=lambda pkt, t: drops.append(pkt),
        )
        for index in range(5):
            link.send(index)
        sim.run()
        assert len(arrivals) == 2
        assert len(drops) == 3
        assert link.overflows == 3

    def test_queue_drains_between_bursts(self):
        sim = Simulator()
        arrivals = []
        link = BottleneckLink(
            sim, delay=0.01, rate_pps=10.0, buffer_packets=2,
            deliver=lambda pkt, t: arrivals.append(pkt),
        )
        link.send(1)
        link.send(2)
        sim.schedule(1.0, lambda: link.send(3))  # queue empty again by then
        sim.run()
        assert arrivals == [1, 2, 3]
        assert link.overflows == 0

    def test_random_loss_model_applies(self):
        sim = Simulator()
        arrivals = []
        link = BottleneckLink(
            sim, delay=0.01, rate_pps=100.0, loss_model=TraceDrivenLoss([0]),
            deliver=lambda pkt, t: arrivals.append(pkt),
        )
        link.send("lost")
        link.send("ok")
        sim.run()
        assert arrivals == ["ok"]
        assert link.dropped == 1

    def test_loss_fraction_counts_both_kinds(self):
        sim = Simulator()
        link = BottleneckLink(
            sim, delay=0.01, rate_pps=10.0, buffer_packets=1,
            loss_model=TraceDrivenLoss([0]),
            deliver=lambda pkt, t: None,
        )
        for _ in range(4):
            link.send("x")  # 1 random drop, then queue=1 -> 2 overflows
        assert link.loss_fraction == pytest.approx(3 / 4)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            BottleneckLink(sim, delay=0.0, rate_pps=10.0)
        with pytest.raises(ConfigurationError):
            BottleneckLink(sim, delay=0.01, rate_pps=0.0)
        with pytest.raises(ConfigurationError):
            BottleneckLink(sim, delay=0.01, rate_pps=10.0, buffer_packets=0)

    def test_missing_deliver_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            BottleneckLink(Simulator(), delay=0.01, rate_pps=10.0)


class TestEndToEnd:
    def test_throughput_capped_near_rate(self):
        config = ConnectionConfig(duration=30.0, wmax=64.0)
        result = run_flow(
            config, NoLoss(), NoLoss(), seed=1,
            bottleneck_rate=200.0, bottleneck_buffer=20,
        )
        assert result.throughput <= 200.0 * 1.01
        assert result.throughput >= 100.0  # AIMD utilises a good share

    def test_congestive_losses_emerge(self):
        config = ConnectionConfig(duration=30.0, wmax=64.0)
        result = run_flow(
            config, NoLoss(), NoLoss(), seed=1,
            bottleneck_rate=200.0, bottleneck_buffer=10,
        )
        assert result.log.data_lost > 0  # drop-tail overflow, no channel loss

    def test_larger_buffer_fewer_losses(self):
        config = ConnectionConfig(duration=30.0, wmax=64.0)
        small = run_flow(config, NoLoss(), NoLoss(), seed=1,
                         bottleneck_rate=200.0, bottleneck_buffer=8)
        large = run_flow(config, NoLoss(), NoLoss(), seed=1,
                         bottleneck_rate=200.0, bottleneck_buffer=64)
        assert large.log.data_lost <= small.log.data_lost

    def test_uncapped_flow_faster(self):
        config = ConnectionConfig(duration=20.0, wmax=64.0)
        free = run_flow(config, NoLoss(), NoLoss(), seed=1)
        capped = run_flow(config, NoLoss(), NoLoss(), seed=1,
                          bottleneck_rate=150.0)
        assert capped.throughput < free.throughput
