"""Unit and behavioural tests for the Reno sender via full connections."""

import math

import pytest

from repro.simulator.channel import BernoulliLoss, NoLoss, TraceDrivenLoss
from repro.simulator.connection import ConnectionConfig, run_flow
from repro.util.rng import RngStream


def config(**overrides) -> ConnectionConfig:
    base = dict(forward_delay=0.03, reverse_delay=0.03, duration=20.0, wmax=32.0)
    base.update(overrides)
    return ConnectionConfig(**base)


class TestLosslessBehaviour:
    def test_throughput_approaches_window_bound(self):
        result = run_flow(config(duration=30.0), NoLoss(), NoLoss())
        bound = result.config.wmax / result.config.base_rtt
        assert result.throughput > 0.9 * bound
        assert result.throughput <= bound * 1.01

    def test_no_losses_no_timeouts(self):
        result = run_flow(config(), NoLoss(), NoLoss())
        assert result.log.data_lost == 0
        assert len(result.log.timeouts) == 0
        assert len(result.log.recovery_phases) == 0

    def test_no_duplicate_payloads(self):
        result = run_flow(config(), NoLoss(), NoLoss())
        assert result.log.duplicate_payloads == 0

    def test_sequence_numbers_delivered_contiguously(self):
        result = run_flow(config(duration=5.0), NoLoss(), NoLoss())
        # Every sent payload up to the last delivered must have arrived.
        seqs = {record.seq for record in result.log.data_packets if not record.lost}
        assert seqs == set(range(len(seqs)))

    def test_window_growth_reaches_wmax(self):
        result = run_flow(config(duration=30.0), NoLoss(), NoLoss())
        assert max(sample.cwnd for sample in result.log.cwnd_samples) == pytest.approx(
            result.config.wmax
        )

    def test_deterministic_given_seed(self):
        a = run_flow(config(), NoLoss(), NoLoss(), seed=7)
        b = run_flow(config(), NoLoss(), NoLoss(), seed=7)
        assert a.throughput == b.throughput
        assert a.log.data_sent == b.log.data_sent


class TestFastRetransmit:
    def test_single_loss_recovers_without_timeout(self):
        # Drop one packet mid-flow; triple dup ACKs (b=1 so every packet
        # acks) should repair it without any RTO.
        result = run_flow(
            config(b=1, duration=10.0),
            data_loss=TraceDrivenLoss([50]),
            ack_loss=NoLoss(),
        )
        assert len(result.log.timeouts) == 0
        retransmissions = [r for r in result.log.data_packets if r.is_retransmission]
        assert len(retransmissions) == 1

    def test_loss_halves_window(self):
        result = run_flow(
            config(b=1, duration=10.0),
            data_loss=TraceDrivenLoss([100]),
            ack_loss=NoLoss(),
        )
        phases = [s.phase for s in result.log.cwnd_samples]
        assert "fast_recovery" in phases

    def test_duplicate_payload_free_fast_retransmit(self):
        # A genuinely lost packet retransmitted via fast retransmit is
        # not a spurious retransmission: no duplicate payloads.
        result = run_flow(
            config(b=1, duration=10.0),
            data_loss=TraceDrivenLoss([50]),
            ack_loss=NoLoss(),
        )
        assert result.log.duplicate_payloads == 0


class TestTimeoutRecovery:
    def test_ack_burst_loss_causes_spurious_timeout(self):
        # Lose a long run of consecutive ACKs: data arrives but the
        # sender times out -> receiver sees duplicate payloads.
        result = run_flow(
            config(duration=15.0),
            data_loss=NoLoss(),
            ack_loss=TraceDrivenLoss(range(10, 200)),
        )
        assert len(result.log.timeouts) >= 1
        assert result.log.duplicate_payloads >= 1
        assert result.log.data_lost == 0  # no data was lost: pure spurious

    def test_recovery_phase_recorded(self):
        result = run_flow(
            config(duration=15.0),
            data_loss=NoLoss(),
            ack_loss=TraceDrivenLoss(range(10, 18)),
        )
        phases = result.log.completed_recovery_phases()
        assert len(phases) >= 1
        assert all(phase.duration > 0 for phase in phases)
        assert all(phase.timeouts >= 1 for phase in phases)

    def test_consecutive_timeouts_backoff_exponentially(self):
        # Lose data packets for a long stretch: RTOs must escalate.
        result = run_flow(
            config(duration=40.0),
            data_loss=TraceDrivenLoss(range(20, 500)),
            ack_loss=NoLoss(),
        )
        timeouts = result.log.timeouts
        assert len(timeouts) >= 3
        rtos = [t.rto_value for t in timeouts[:4]]
        for earlier, later in zip(rtos, rtos[1:]):
            assert later >= earlier * 1.9

    def test_backoff_exponent_capped(self):
        result = run_flow(
            config(duration=300.0),
            data_loss=TraceDrivenLoss(range(20, 100000)),
            ack_loss=NoLoss(),
        )
        assert max(t.backoff_exponent for t in result.log.timeouts) <= 6

    def test_only_one_packet_retransmitted_per_timeout(self):
        result = run_flow(
            config(duration=30.0),
            data_loss=TraceDrivenLoss(range(20, 300)),
            ack_loss=NoLoss(),
        )
        in_recovery = [r for r in result.log.data_packets if r.in_timeout_recovery]
        assert len(in_recovery) == len(result.log.timeouts)

    def test_slow_start_after_recovery(self):
        result = run_flow(
            config(duration=30.0),
            data_loss=TraceDrivenLoss(range(20, 25)),
            ack_loss=NoLoss(),
        )
        # After the recovery phase completes, phase returns to slow start.
        phases = [s.phase for s in result.log.cwnd_samples]
        assert "timeout_recovery" in phases
        index = phases.index("timeout_recovery")
        assert "slow_start" in phases[index + 1 :]

    def test_recovery_loss_counters(self):
        # A long outage swallows the in-flight window and the first few
        # RTO retransmissions: the recovery phase must count its own
        # lost retransmissions.
        result = run_flow(
            config(duration=60.0),
            data_loss=TraceDrivenLoss(range(20, 36)),
            ack_loss=NoLoss(),
        )
        phases = result.log.completed_recovery_phases()
        assert phases
        total_retx = sum(p.retransmissions for p in phases)
        total_lost = sum(p.retransmissions_lost for p in phases)
        assert total_retx >= 2
        assert 0 < total_lost < total_retx


class TestStochasticBehaviour:
    def test_empirical_loss_rates_near_configured(self):
        rng = RngStream(5)
        result = run_flow(
            config(duration=120.0, wmax=64.0),
            data_loss=BernoulliLoss(0.01, rng.spawn("d")),
            ack_loss=BernoulliLoss(0.01, rng.spawn("a")),
            seed=5,
        )
        assert result.data_loss_rate == pytest.approx(0.01, abs=0.008)
        assert result.ack_loss_rate == pytest.approx(0.01, abs=0.008)

    def test_higher_loss_lower_throughput(self):
        rng = RngStream(6)
        low = run_flow(
            config(duration=60.0),
            BernoulliLoss(0.002, rng.spawn("d1")),
            NoLoss(), seed=1,
        )
        high = run_flow(
            config(duration=60.0),
            BernoulliLoss(0.05, rng.spawn("d2")),
            NoLoss(), seed=1,
        )
        assert high.throughput < low.throughput

    def test_cwnd_never_exceeds_wmax(self):
        rng = RngStream(7)
        result = run_flow(
            config(duration=60.0, wmax=16.0),
            BernoulliLoss(0.005, rng.spawn("d")),
            NoLoss(), seed=2,
        )
        # Fast-recovery window inflation may exceed wmax transiently
        # (real stacks cap the *effective* window, not cwnd itself).
        assert all(
            s.cwnd <= 16.0 + 1e-9
            for s in result.log.cwnd_samples
            if s.phase != "fast_recovery"
        )

    def test_delivered_never_exceeds_sent(self):
        rng = RngStream(8)
        result = run_flow(
            config(duration=30.0),
            BernoulliLoss(0.02, rng.spawn("d")),
            BernoulliLoss(0.02, rng.spawn("a")),
            seed=3,
        )
        assert result.log.delivered_payloads <= result.log.data_sent

    def test_rtt_floor_respected(self):
        result = run_flow(config(duration=5.0), NoLoss(), NoLoss())
        for record in result.log.data_packets:
            if record.latency is not None:
                assert record.latency >= result.config.forward_delay - 1e-12
