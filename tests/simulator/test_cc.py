"""Unit tests for the congestion-control registry (legacy import path).

The registry now lives in :mod:`repro.cc`; this module keeps exercising
it through the deprecated :mod:`repro.simulator.cc` shim so the
back-compat surface stays covered.  The new-API tests live in
``tests/cc/``.
"""

import warnings

import pytest

with warnings.catch_warnings():
    warnings.simplefilter("ignore", DeprecationWarning)
    from repro.simulator.cc import (
        cc_names,
        get_cc,
        make_sender,
        register_cc,
        unregister_cc,
    )

from repro.simulator.newreno import NewRenoSender
from repro.simulator.reno import RenoSender
from repro.util.errors import ConfigurationError


class TestBuiltins:
    def test_paper_variants_registered(self):
        assert "reno" in cc_names()
        assert "newreno" in cc_names()
        assert get_cc("reno") is RenoSender
        assert get_cc("newreno") is NewRenoSender

    def test_zoo_variants_registered(self):
        for name in ("cubic", "bbr", "compound", "relentless"):
            assert name in cc_names()

    def test_names_sorted(self):
        assert list(cc_names()) == sorted(cc_names())


class TestRegistration:
    def test_register_and_unregister(self):
        sentinel = object

        register_cc("test-variant", sentinel)
        try:
            assert get_cc("test-variant") is sentinel
            assert "test-variant" in cc_names()
        finally:
            unregister_cc("test-variant")
        assert "test-variant" not in cc_names()

    def test_duplicate_rejected_without_replace(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_cc("reno", RenoSender)

    def test_replace_allows_override(self):
        register_cc("reno", RenoSender, replace=True)
        assert get_cc("reno") is RenoSender

    def test_invalid_name_rejected(self):
        with pytest.raises(ConfigurationError):
            register_cc("", RenoSender)

    def test_non_callable_factory_rejected(self):
        with pytest.raises(ConfigurationError, match="not callable"):
            register_cc("broken", 42)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigurationError, match="newreno"):
            get_cc("vegas")

    def test_unregister_missing_is_noop(self):
        unregister_cc("never-registered")


class TestMakeSender:
    def test_passes_kwargs_to_factory(self):
        seen = {}

        def factory(simulator, data_link, log, **kwargs):
            seen.update(kwargs, simulator=simulator)
            return "sender"

        register_cc("probe", factory)
        try:
            result = make_sender("probe", "sim", "link", "log", wmax=16.0)
            assert result == "sender"
            assert seen == {"simulator": "sim", "wmax": 16.0}
        finally:
            unregister_cc("probe")
