"""Behavioural tests for the NewReno sender variant."""

import pytest

from repro.simulator import (
    BernoulliLoss,
    ConnectionConfig,
    NoLoss,
    RoundCorrelatedLoss,
    TraceDrivenLoss,
    run_flow,
)
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream


def config(**overrides) -> ConnectionConfig:
    base = dict(duration=30.0, wmax=32.0)
    base.update(overrides)
    return ConnectionConfig(**base)


class TestVariantSelection:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            run_flow(config(duration=1.0), NoLoss(), NoLoss(), variant="cubic")

    def test_lossless_behaviour_identical(self):
        reno = run_flow(config(duration=10.0), NoLoss(), NoLoss(), seed=1)
        newreno = run_flow(
            config(duration=10.0), NoLoss(), NoLoss(), seed=1, variant="newreno"
        )
        assert reno.throughput == newreno.throughput
        assert reno.log.data_sent == newreno.log.data_sent


class TestPartialAckRecovery:
    def test_multi_loss_window_repaired_without_timeout(self):
        # Two separated losses inside one window: classic Reno usually
        # times out on the second hole; NewReno's partial-ACK
        # retransmission repairs both in one fast recovery.
        losses = [60, 64]
        newreno = run_flow(
            config(b=1, duration=20.0),
            data_loss=TraceDrivenLoss(losses),
            ack_loss=NoLoss(),
            seed=2,
            variant="newreno",
        )
        assert len(newreno.log.timeouts) == 0
        retx = [r for r in newreno.log.data_packets if r.is_retransmission]
        assert len(retx) >= 2  # both holes retransmitted

    def test_fewer_timeouts_than_reno_on_correlated_loss(self):
        rng_a, rng_b = RngStream(5, "a"), RngStream(5, "b")
        cfg = config(duration=90.0)
        reno = run_flow(
            cfg,
            RoundCorrelatedLoss(rng_a.spawn("d"), 0.002, cfg.base_rtt),
            NoLoss(), seed=5,
        )
        newreno = run_flow(
            cfg,
            RoundCorrelatedLoss(rng_b.spawn("d"), 0.002, cfg.base_rtt),
            NoLoss(), seed=5, variant="newreno",
        )
        assert len(newreno.log.timeouts) <= len(reno.log.timeouts)

    def test_throughput_not_worse_than_reno(self):
        rng = RngStream(7, "x")
        cfg = config(duration=60.0)
        reno = run_flow(
            cfg, RoundCorrelatedLoss(RngStream(7, "d"), 0.003, cfg.base_rtt),
            NoLoss(), seed=7,
        )
        newreno = run_flow(
            cfg, RoundCorrelatedLoss(RngStream(7, "d"), 0.003, cfg.base_rtt),
            NoLoss(), seed=7, variant="newreno",
        )
        assert newreno.throughput >= 0.9 * reno.throughput

    def test_spurious_timeouts_unchanged(self):
        # Pure ACK outage: NewReno times out exactly like Reno — it
        # cannot see missing ACKs (the paper's variant-agnostic point).
        cfg = config(duration=15.0, min_rto=0.4)
        reno = run_flow(
            cfg, NoLoss(), TraceDrivenLoss(range(10, 18)), seed=9,
        )
        newreno = run_flow(
            cfg, NoLoss(), TraceDrivenLoss(range(10, 18)), seed=9, variant="newreno",
        )
        assert len(newreno.log.timeouts) == len(reno.log.timeouts)

    def test_sequence_delivery_complete(self):
        result = run_flow(
            config(b=1, duration=20.0),
            data_loss=TraceDrivenLoss([60, 64]),
            ack_loss=NoLoss(),
            seed=2,
            variant="newreno",
        )
        delivered = {r.seq for r in result.log.data_packets if r.arrival_time is not None}
        assert delivered == set(range(len(delivered)))
