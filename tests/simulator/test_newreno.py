"""Behavioural tests for the NewReno sender variant."""

import pytest

from repro.simulator import (
    BernoulliLoss,
    ConnectionConfig,
    NewRenoSender,
    NoLoss,
    RoundCorrelatedLoss,
    Simulator,
    TraceDrivenLoss,
    run_flow,
)
from repro.simulator.channel import Link
from repro.simulator.metrics import AckRecord, FlowLog
from repro.simulator.packet import AckSegment
from repro.simulator.reno import _CONGESTION_AVOIDANCE, _FAST_RECOVERY
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream


def config(**overrides) -> ConnectionConfig:
    base = dict(duration=30.0, wmax=32.0)
    base.update(overrides)
    return ConnectionConfig(**base)


class TestVariantSelection:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            run_flow(config(duration=1.0), NoLoss(), NoLoss(), variant="vegas")

    def test_lossless_behaviour_identical(self):
        reno = run_flow(config(duration=10.0), NoLoss(), NoLoss(), seed=1)
        newreno = run_flow(
            config(duration=10.0), NoLoss(), NoLoss(), seed=1, variant="newreno"
        )
        assert reno.throughput == newreno.throughput
        assert reno.log.data_sent == newreno.log.data_sent


def _fast_recovery_sender():
    """A NewReno sender driven by hand into fast recovery.

    The initial pump sends seq 0..7 (cwnd=8); three duplicate ACKs for
    seq 0 then trigger fast retransmit: ssthresh=4, cwnd=7, recovery
    point at snd_max=8.
    """
    sim = Simulator()
    log = FlowLog()
    link = Link(
        sim, delay=0.03, loss_model=NoLoss(),
        deliver=lambda segment, time: None,  # ACKs are injected by hand
    )
    sender = NewRenoSender(sim, link, log, wmax=32.0, initial_cwnd=8.0)
    sender.start()
    sim.run(until=0.1)
    for tid in range(3):
        _deliver_ack(sim, sender, log, ack_seq=0, tid=tid)
    assert sender.phase == _FAST_RECOVERY
    assert sender.cwnd == 7.0
    return sim, sender, log


def _deliver_ack(sim, sender, log, ack_seq, tid):
    log.record_ack_send(
        AckRecord(transmission_id=tid, ack_seq=ack_seq, send_time=sim.now)
    )
    sender.on_ack(
        AckSegment(ack_seq=ack_seq, transmission_id=tid, send_time=sim.now), sim.now
    )


class TestPartialAckMechanics:
    def test_partial_ack_deflates_window(self):
        # RFC 6582: deflate by the amount newly acknowledged, plus one
        # for the retransmission sent — 7 - 3 + 1 = 5 here.
        sim, sender, log = _fast_recovery_sender()
        _deliver_ack(sim, sender, log, ack_seq=3, tid=50)
        assert sender.cwnd == 5.0
        assert sender.ssthresh == 4.0  # untouched until recovery ends

    def test_partial_ack_stays_in_fast_recovery(self):
        sim, sender, log = _fast_recovery_sender()
        _deliver_ack(sim, sender, log, ack_seq=3, tid=50)
        assert sender.phase == _FAST_RECOVERY
        # The next hole (the new snd_una) was retransmitted immediately.
        hole = log.data_packets[-1]
        assert hole.seq == 3 and hole.is_retransmission
        assert not hole.in_timeout_recovery
        # An ACK past the recovery point finally exits to congestion
        # avoidance with the classic deflation to ssthresh.
        _deliver_ack(sim, sender, log, ack_seq=8, tid=51)
        assert sender.phase == _CONGESTION_AVOIDANCE
        assert sender.cwnd == 4.0

    def test_partial_ack_restarts_rto_timer(self):
        # Each partial ACK proves the connection is alive, so the
        # retransmission timer must be re-armed, not left running.
        sim, sender, log = _fast_recovery_sender()
        before = sender._rto_timer
        assert before is not None
        _deliver_ack(sim, sender, log, ack_seq=3, tid=50)
        after = sender._rto_timer
        assert after is not None and after is not before
        assert before.cancelled and not after.cancelled


class TestPartialAckRecovery:
    def test_multi_loss_window_repaired_without_timeout(self):
        # Two separated losses inside one window: classic Reno usually
        # times out on the second hole; NewReno's partial-ACK
        # retransmission repairs both in one fast recovery.
        losses = [60, 64]
        newreno = run_flow(
            config(b=1, duration=20.0),
            data_loss=TraceDrivenLoss(losses),
            ack_loss=NoLoss(),
            seed=2,
            variant="newreno",
        )
        assert len(newreno.log.timeouts) == 0
        retx = [r for r in newreno.log.data_packets if r.is_retransmission]
        assert len(retx) >= 2  # both holes retransmitted

    def test_fewer_timeouts_than_reno_on_correlated_loss(self):
        rng_a, rng_b = RngStream(5, "a"), RngStream(5, "b")
        cfg = config(duration=90.0)
        reno = run_flow(
            cfg,
            RoundCorrelatedLoss(rng_a.spawn("d"), 0.002, cfg.base_rtt),
            NoLoss(), seed=5,
        )
        newreno = run_flow(
            cfg,
            RoundCorrelatedLoss(rng_b.spawn("d"), 0.002, cfg.base_rtt),
            NoLoss(), seed=5, variant="newreno",
        )
        assert len(newreno.log.timeouts) <= len(reno.log.timeouts)

    def test_throughput_not_worse_than_reno(self):
        rng = RngStream(7, "x")
        cfg = config(duration=60.0)
        reno = run_flow(
            cfg, RoundCorrelatedLoss(RngStream(7, "d"), 0.003, cfg.base_rtt),
            NoLoss(), seed=7,
        )
        newreno = run_flow(
            cfg, RoundCorrelatedLoss(RngStream(7, "d"), 0.003, cfg.base_rtt),
            NoLoss(), seed=7, variant="newreno",
        )
        assert newreno.throughput >= 0.9 * reno.throughput

    def test_spurious_timeouts_unchanged(self):
        # Pure ACK outage: NewReno times out exactly like Reno — it
        # cannot see missing ACKs (the paper's variant-agnostic point).
        cfg = config(duration=15.0, min_rto=0.4)
        reno = run_flow(
            cfg, NoLoss(), TraceDrivenLoss(range(10, 18)), seed=9,
        )
        newreno = run_flow(
            cfg, NoLoss(), TraceDrivenLoss(range(10, 18)), seed=9, variant="newreno",
        )
        assert len(newreno.log.timeouts) == len(reno.log.timeouts)

    def test_sequence_delivery_complete(self):
        result = run_flow(
            config(b=1, duration=20.0),
            data_loss=TraceDrivenLoss([60, 64]),
            ack_loss=NoLoss(),
            seed=2,
            variant="newreno",
        )
        delivered = {r.seq for r in result.log.data_packets if r.arrival_time is not None}
        assert delivered == set(range(len(delivered)))
