"""Unit tests for loss models and the Link."""

import pytest

from repro.simulator.channel import (
    BernoulliLoss,
    CompositeLoss,
    GilbertElliottLoss,
    HandoffLoss,
    Link,
    NoLoss,
    TraceDrivenLoss,
)
from repro.simulator.engine import Simulator
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream


def rng() -> RngStream:
    return RngStream(1234)


class TestBernoulliLoss:
    def test_zero_rate_never_loses(self):
        model = BernoulliLoss(0.0, rng())
        assert not any(model.is_lost(float(i)) for i in range(1000))

    def test_rate_converges(self):
        model = BernoulliLoss(0.2, rng())
        n = 20000
        losses = sum(model.is_lost(float(i)) for i in range(n))
        assert abs(losses / n - 0.2) < 0.02

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            BernoulliLoss(1.0, rng())
        with pytest.raises(ConfigurationError):
            BernoulliLoss(-0.1, rng())


class TestGilbertElliott:
    def test_stationary_loss_rate_formula(self):
        model = GilbertElliottLoss(
            rng(), mean_good_duration=9.0, mean_bad_duration=1.0,
            loss_good=0.0, loss_bad=1.0,
        )
        assert model.stationary_loss_rate == pytest.approx(0.1)

    def test_empirical_rate_near_stationary(self):
        model = GilbertElliottLoss(
            rng(), mean_good_duration=5.0, mean_bad_duration=0.5,
            loss_good=0.001, loss_bad=1.0,
        )
        n = 50000
        dt = 0.01
        losses = sum(model.is_lost(i * dt) for i in range(n))
        assert losses / n == pytest.approx(model.stationary_loss_rate, abs=0.03)

    def test_losses_are_bursty(self):
        # Consecutive-loss run lengths should far exceed the Bernoulli
        # expectation at the same average rate.
        model = GilbertElliottLoss(
            rng(), mean_good_duration=10.0, mean_bad_duration=0.5,
        )
        dt = 0.01
        outcomes = [model.is_lost(i * dt) for i in range(100000)]
        runs, current = [], 0
        for lost in outcomes:
            if lost:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs, "expected at least one burst"
        mean_run = sum(runs) / len(runs)
        # Bernoulli at the same rate (~4.8%) would have mean run ~1.05.
        assert mean_run > 3.0

    def test_time_must_not_go_backwards_is_tolerated_forward_only(self):
        model = GilbertElliottLoss(rng(), 1.0, 1.0)
        model.is_lost(0.0)
        model.is_lost(10.0)  # jumping forward over several sojourns is fine

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            GilbertElliottLoss(rng(), 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            GilbertElliottLoss(rng(), 1.0, 1.0, loss_good=1.0)


class TestHandoffLoss:
    def test_total_loss_inside_outage(self):
        model = HandoffLoss(rng(), outages=[(1.0, 2.0)], base_rate=0.0)
        assert model.is_lost(1.5)
        assert not model.is_lost(2.5)

    def test_base_rate_outside_outage(self):
        model = HandoffLoss(rng(), outages=[(100.0, 101.0)], base_rate=0.3)
        n = 10000
        losses = sum(model.is_lost(i * 0.001) for i in range(n))
        assert abs(losses / n - 0.3) < 0.03

    def test_in_outage_queries_monotone_time(self):
        model = HandoffLoss(rng(), outages=[(1.0, 2.0), (3.0, 4.0)])
        assert not model.in_outage(0.5)
        assert model.in_outage(1.5)
        assert not model.in_outage(2.5)
        assert model.in_outage(3.5)
        assert not model.in_outage(4.5)

    def test_rejects_unsorted_outages(self):
        with pytest.raises(ConfigurationError):
            HandoffLoss(rng(), outages=[(3.0, 4.0), (1.0, 2.0)])

    def test_rejects_empty_interval(self):
        with pytest.raises(ConfigurationError):
            HandoffLoss(rng(), outages=[(2.0, 2.0)])


class TestTraceDrivenLoss:
    def test_scripted_outcomes(self):
        model = TraceDrivenLoss([1, 3])
        outcomes = [model.is_lost(0.0) for _ in range(5)]
        assert outcomes == [False, True, False, True, False]

    def test_beyond_script_survives(self):
        model = TraceDrivenLoss([0])
        model.is_lost(0.0)
        assert not any(model.is_lost(0.0) for _ in range(10))

    def test_counts_transmissions(self):
        model = TraceDrivenLoss([])
        for _ in range(7):
            model.is_lost(0.0)
        assert model.transmissions_seen == 7


class TestCompositeLoss:
    def test_any_component_loses(self):
        model = CompositeLoss([TraceDrivenLoss([0]), TraceDrivenLoss([1])])
        assert model.is_lost(0.0)  # first component
        assert model.is_lost(0.0)  # second component
        assert not model.is_lost(0.0)

    def test_all_components_advance(self):
        a, b = TraceDrivenLoss([0]), TraceDrivenLoss([0])
        model = CompositeLoss([a, b])
        model.is_lost(0.0)
        assert a.transmissions_seen == b.transmissions_seen == 1

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            CompositeLoss([])


class TestLink:
    def test_delivers_after_delay(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, delay=0.05, deliver=lambda pkt, t: arrivals.append((pkt, t)))
        sim.schedule(1.0, lambda: link.send("hello"))
        sim.run()
        assert arrivals == [("hello", pytest.approx(1.05))]

    def test_loss_invokes_on_drop(self):
        sim = Simulator()
        arrivals, drops = [], []
        link = Link(
            sim, delay=0.05, loss_model=TraceDrivenLoss([0]),
            deliver=lambda pkt, t: arrivals.append(pkt),
            on_drop=lambda pkt, t: drops.append((pkt, t)),
        )
        link.send("lost")
        link.send("ok")
        sim.run()
        assert arrivals == ["ok"]
        assert drops == [("lost", 0.0)]

    def test_counters_and_loss_fraction(self):
        sim = Simulator()
        link = Link(sim, delay=0.01, loss_model=TraceDrivenLoss([0, 1]),
                    deliver=lambda pkt, t: None)
        for _ in range(4):
            link.send("x")
        assert link.sent == 4
        assert link.dropped == 2
        assert link.loss_fraction == pytest.approx(0.5)

    def test_jitter_added_to_delay(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, delay=0.05, jitter=lambda: 0.02,
                    deliver=lambda pkt, t: arrivals.append(t))
        link.send("x")
        sim.run()
        assert arrivals == [pytest.approx(0.07)]

    def test_negative_jitter_clipped(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, delay=0.05, jitter=lambda: -1.0,
                    deliver=lambda pkt, t: arrivals.append(t))
        link.send("x")
        sim.run()
        assert arrivals == [pytest.approx(0.05)]

    def test_rejects_nonpositive_delay(self):
        with pytest.raises(ConfigurationError):
            Link(Simulator(), delay=0.0)

    def test_missing_deliver_rejected_at_construction(self):
        # The configuration error must surface when the link is built,
        # not when the first surviving packet tries to arrive.
        with pytest.raises(ConfigurationError):
            Link(Simulator(), delay=0.01)

    def test_fifo_ordering_without_jitter(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, delay=0.05, deliver=lambda pkt, t: arrivals.append(pkt))
        link.send(1)
        sim.schedule(0.001, lambda: link.send(2))
        sim.run()
        assert arrivals == [1, 2]


class TestGilbertElliottBoundaries:
    """Edge semantics of the continuous-time state advance."""

    def _model(self, seed=77, **kwargs):
        defaults = dict(
            mean_good_duration=2.0, mean_bad_duration=0.5,
            loss_good=0.0, loss_bad=1.0,
        )
        defaults.update(kwargs)
        return GilbertElliottLoss(RngStream(seed, "ge"), **defaults)

    def test_expiry_instant_belongs_to_next_state(self):
        # The sojourn interval is half-open: a packet sent exactly when
        # the state expires sees the *new* state, matching the `>=`
        # guard in is_lost.
        model = self._model()
        expires = model._state_expires
        assert not model._in_bad_state
        model._advance_to(expires)
        assert model._in_bad_state
        assert model._state_expires > expires

    def test_advance_skips_multiple_epochs(self):
        # A long quiet gap (an idle connection) must land in the state
        # that continuous time dictates, not merely the next one.
        model = self._model()
        horizon = model._state_expires + 50.0
        model._advance_to(horizon)
        assert model._state_expires > horizon

    def test_block_at_expiry_matches_scalar(self):
        # A burst whose timestamps straddle the state boundary draws
        # exactly the outcomes the scalar walk would.
        scalar = self._model(seed=91, loss_good=0.3, loss_bad=0.9)
        block = self._model(seed=91, loss_good=0.3, loss_bad=0.9)
        edge = scalar._state_expires
        times = [edge - 1e-9, edge, edge, edge + 1e-9]
        expected = [scalar.is_lost(now) for now in times]
        assert list(block.is_lost_block(times)) == expected
        assert block._state_expires == scalar._state_expires
        assert block._in_bad_state == scalar._in_bad_state

    def test_zero_length_burst_is_a_noop(self):
        model = self._model()
        state = (model._in_bad_state, model._state_expires)
        assert list(model.is_lost_block([])) == []
        assert (model._in_bad_state, model._state_expires) == state


class TestHandoffBoundaries:
    """Half-open outage windows and cursor behaviour at the edges."""

    def test_outage_start_is_inclusive(self):
        model = HandoffLoss(rng(), outages=[(1.0, 2.0)])
        assert model.in_outage(1.0)

    def test_outage_end_is_exclusive(self):
        # A packet sent exactly when the outage ends is already clear:
        # the window is [start, end), mirroring the state-expiry rule.
        model = HandoffLoss(rng(), outages=[(1.0, 2.0)])
        assert not model.in_outage(2.0)

    def test_edge_exactly_at_now_loses_then_survives(self):
        model = HandoffLoss(rng(), outages=[(1.0, 2.0)], base_rate=0.0)
        assert model.is_lost(1.0)
        assert not model.is_lost(2.0)

    def test_adjacent_outages_have_no_gap(self):
        # (1,2) and (2,3) touching: t=2.0 belongs to the second window.
        model = HandoffLoss(rng(), outages=[(1.0, 2.0), (2.0, 3.0)])
        assert model.in_outage(1.999999)
        assert model.in_outage(2.0)
        assert not model.in_outage(3.0)

    def test_zero_length_burst_is_a_noop(self):
        model = HandoffLoss(rng(), outages=[(1.0, 2.0)])
        model.in_outage(0.5)
        cursor = model._cursor_outage
        assert list(model.is_lost_block([])) == []
        assert model._cursor_outage == cursor

    def test_block_at_window_edge_matches_scalar(self):
        scalar = HandoffLoss(RngStream(5, "h"), outages=[(1.0, 2.0)], base_rate=0.2)
        block = HandoffLoss(RngStream(5, "h"), outages=[(1.0, 2.0)], base_rate=0.2)
        for edge in (1.0, 2.0):
            times = [edge] * 6
            expected = [scalar.is_lost(now) for now in times]
            assert list(block.is_lost_block(times)) == expected

    def test_cursor_past_last_outage(self):
        model = HandoffLoss(rng(), outages=[(1.0, 2.0)])
        assert not model.in_outage(10.0)
        assert not model.in_outage(11.0)
        assert model._cursor_outage == 1
