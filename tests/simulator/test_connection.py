"""Unit tests for ConnectionConfig, including the with_ copier."""

import pytest

from repro.simulator.connection import ConnectionConfig
from repro.util.errors import ConfigurationError


class TestWith:
    def test_replaces_named_fields(self):
        base = ConnectionConfig(duration=60.0, wmax=32.0)
        changed = base.with_(duration=10.0, b=1)
        assert changed.duration == 10.0
        assert changed.b == 1
        assert changed.wmax == 32.0  # untouched fields survive

    def test_original_untouched(self):
        base = ConnectionConfig(duration=60.0)
        base.with_(duration=5.0)
        assert base.duration == 60.0

    def test_unknown_field_raises_configuration_error(self):
        base = ConnectionConfig()
        with pytest.raises(ConfigurationError) as excinfo:
            base.with_(durration=10.0)
        message = str(excinfo.value)
        assert "durration" in message
        assert "duration" in message  # the known fields are listed

    def test_multiple_unknown_fields_all_named(self):
        base = ConnectionConfig()
        with pytest.raises(ConfigurationError, match="bogus.*nope|nope.*bogus"):
            base.with_(nope=1, bogus=2)

    def test_validation_still_applies(self):
        base = ConnectionConfig()
        with pytest.raises(ConfigurationError):
            base.with_(duration=-1.0)
