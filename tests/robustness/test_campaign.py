"""Campaign resilience: one bad flow never aborts or perturbs the rest."""

import pytest

import repro.exec.executor as executor_module
import repro.traces.capture as capture_module
from repro.robustness.campaign import CampaignReport, RetryPolicy
from repro.traces.generator import generate_dataset
from repro.util.errors import ConfigurationError, SimulationError
from repro.util.rng import RngStream

# Keep the campaign ≥ 20 flows (the acceptance bar) but short-lived.
FLOW_SCALE = 0.08  # 4 + 6 + 5 + 5 = 20 flows
DURATION = 8.0
SEED = 42


def flow_seeds(seed=SEED, flow_scale=FLOW_SCALE):
    """Replicate the generator's stateless per-flow base-seed derivation."""
    from repro.traces.generator import PAPER_CAMPAIGN

    rng = RngStream(seed, "dataset")
    seeds = []
    for entry in PAPER_CAMPAIGN:
        flows = max(1, round(entry.flows * flow_scale))
        for index in range(flows):
            base = (
                rng.spawn(entry.capture_month, entry.provider.name, index).seed
                & 0x7FFFFFFF
            )
            flow_id = f"{entry.capture_month}/{entry.provider.name}/{index:03d}"
            seeds.append((flow_id, base))
    return seeds


@pytest.fixture()
def fail_flow(monkeypatch):
    """Monkeypatch simulate_spec to raise for chosen seeds; returns the registrar.

    Patching the executor's module global only reaches the serial
    backend, which is what these tests run.
    """
    real_simulate_spec = executor_module.simulate_spec
    bad_seeds = set()

    def failing_simulate_spec(spec):
        if spec.seed in bad_seeds:
            raise SimulationError(f"injected failure for seed {spec.seed}")
        return real_simulate_spec(spec)

    monkeypatch.setattr(executor_module, "simulate_spec", failing_simulate_spec)
    return bad_seeds


class TestRetryPolicy:
    def test_attempt_zero_is_base_seed(self):
        policy = RetryPolicy()
        assert policy.seed_for_attempt(123, 0) == 123

    def test_retry_seeds_differ_and_are_deterministic(self):
        policy = RetryPolicy(max_retries=3)
        seeds = [policy.seed_for_attempt(123, a) for a in range(4)]
        assert len(set(seeds)) == 4
        assert seeds == [policy.seed_for_attempt(123, a) for a in range(4)]

    def test_rejects_negative_retries(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)


class TestCleanCampaign:
    def test_clean_run_has_clean_report(self):
        dataset = generate_dataset(
            seed=SEED, duration=DURATION, flow_scale=FLOW_SCALE
        )
        report = dataset.report
        assert report.ok
        assert report.attempted == 20
        assert report.succeeded == 20
        assert report.retried == 0
        assert report.failures == [] and report.quarantines == []
        assert dataset.flow_count == 20


class TestInjectedFailure:
    def test_persistent_failure_is_quarantined_not_fatal(self, fail_flow):
        seeds = flow_seeds()
        victim_id, victim_base = seeds[7]  # flow N of the 20
        policy = RetryPolicy()
        fail_flow.update(
            policy.seed_for_attempt(victim_base, a)
            for a in range(policy.max_attempts)
        )

        dataset = generate_dataset(
            seed=SEED, duration=DURATION, flow_scale=FLOW_SCALE
        )
        report = dataset.report

        # All other flows survive.
        assert dataset.flow_count == 19
        assert victim_id not in {t.metadata.flow_id for t in dataset.traces}
        # The report names the failed flow, its seeds, and the error.
        assert report.attempted == 20
        assert report.succeeded == 19
        assert report.quarantined == 1
        assert report.quarantines[0].flow_id == victim_id
        assert report.quarantines[0].seed == victim_base
        assert "injected failure" in report.quarantines[0].reason
        assert len(report.failures) == policy.max_attempts
        assert {f.flow_id for f in report.failures} == {victim_id}
        assert [f.attempt for f in report.failures] == list(
            range(policy.max_attempts)
        )

    def test_transient_failure_is_retried_with_new_seed(self, fail_flow):
        seeds = flow_seeds()
        victim_id, victim_base = seeds[3]
        fail_flow.add(victim_base)  # only attempt 0 fails

        dataset = generate_dataset(
            seed=SEED, duration=DURATION, flow_scale=FLOW_SCALE
        )
        report = dataset.report

        assert dataset.flow_count == 20
        assert report.ok
        assert report.retried == 1
        assert len(report.failures) == 1
        assert report.failures[0].flow_id == victim_id
        assert report.failures[0].seed == victim_base
        retried = [t for t in dataset.traces if t.metadata.flow_id == victim_id]
        assert len(retried) == 1
        assert retried[0].metadata.seed == RetryPolicy().seed_for_attempt(
            victim_base, 1
        )

    def test_failure_does_not_perturb_other_flows(self, fail_flow):
        clean = generate_dataset(seed=SEED, duration=DURATION, flow_scale=FLOW_SCALE)
        seeds = flow_seeds()
        victim_id, victim_base = seeds[7]
        policy = RetryPolicy()
        fail_flow.update(
            policy.seed_for_attempt(victim_base, a)
            for a in range(policy.max_attempts)
        )
        degraded = generate_dataset(
            seed=SEED, duration=DURATION, flow_scale=FLOW_SCALE
        )
        clean_by_id = {
            t.metadata.flow_id: t.delivered_payloads for t in clean.traces
        }
        for trace in degraded.traces:
            assert (
                trace.delivered_payloads == clean_by_id[trace.metadata.flow_id]
            )

    def test_same_seed_reproduces_byte_identical_report(self, fail_flow):
        seeds = flow_seeds()
        _, victim_base = seeds[7]
        policy = RetryPolicy()
        fail_flow.update(
            policy.seed_for_attempt(victim_base, a)
            for a in range(policy.max_attempts)
        )
        first = generate_dataset(
            seed=SEED, duration=DURATION, flow_scale=FLOW_SCALE
        ).report
        second = generate_dataset(
            seed=SEED, duration=DURATION, flow_scale=FLOW_SCALE
        ).report
        assert first.to_json() == second.to_json()
        assert not first.ok  # and it is a *degraded* report, not an empty one

    def test_zero_retries_policy(self, fail_flow):
        seeds = flow_seeds()
        _, victim_base = seeds[0]
        fail_flow.add(victim_base)
        dataset = generate_dataset(
            seed=SEED,
            duration=DURATION,
            flow_scale=FLOW_SCALE,
            retry_policy=RetryPolicy(max_retries=0),
        )
        assert dataset.report.quarantined == 1
        assert dataset.report.retried == 0
        assert dataset.flow_count == 19


class TestValidationQuarantine:
    def test_corrupt_capture_is_quarantined_with_reason(self, monkeypatch):
        real_capture = capture_module.capture_flow
        corrupted = []

        def corrupting_capture(result, metadata, validate=False):
            trace = real_capture(result, metadata, validate=False)
            if metadata.flow_id.endswith("/001") and trace.data_packets:
                # Timestamps running backwards: the validator must veto it.
                trace.data_packets[-1].send_time = -5.0
                corrupted.append(metadata.flow_id)
            if validate:
                from repro.robustness.validate import validate_trace
                from repro.util.errors import TraceValidationError

                issues = validate_trace(trace)
                if issues:
                    raise TraceValidationError(metadata.flow_id, issues)
            return trace

        # simulate_spec imports capture_flow from its module at call
        # time, so patching repro.traces.capture reaches it.
        monkeypatch.setattr(capture_module, "capture_flow", corrupting_capture)
        # flow_scale 0.03 gives two flows per cell, so each cell has a
        # ".../001" flow for the corruptor to hit.
        dataset = generate_dataset(seed=SEED, duration=DURATION, flow_scale=0.03)
        assert corrupted  # the corruption path actually ran
        bad_ids = set(corrupted)
        assert dataset.report.quarantined == len(bad_ids)
        assert all(
            t.metadata.flow_id not in bad_ids for t in dataset.traces
        )
        assert all(
            "TraceValidationError" in q.reason for q in dataset.report.quarantines
        )


class TestReportRendering:
    def test_summary_and_format(self):
        report = CampaignReport(attempted=20, succeeded=19, retried=2, quarantined=1)
        assert "19/20" in report.summary()
        assert "quarantined" in report.format()

    def test_to_json_is_canonical(self):
        report = CampaignReport(attempted=1, succeeded=1)
        assert report.to_json() == report.to_json()
        assert '"attempted":1' in report.to_json()
