"""Watchdog guards: budgets terminate runaway simulations, never healthy ones."""

import pytest

from repro.experiments.registry import run_experiment
from repro.hsr.scenario import hsr_scenario
from repro.robustness.watchdog import (
    Watchdog,
    current_watchdog,
    watchdog_scope,
)
from repro.simulator.connection import run_flow
from repro.simulator.engine import Simulator
from repro.util.errors import BudgetExceededError, ConfigurationError


def make_runaway(sim):
    """An event that reschedules itself forever without advancing time."""

    def resched():
        sim.schedule(0.0, resched)

    return resched


class TestEventBudget:
    def test_infinite_loop_terminates_at_exact_budget(self):
        sim = Simulator()
        sim.schedule(0.0, make_runaway(sim))
        with pytest.raises(BudgetExceededError) as excinfo:
            sim.run(event_budget=500)
        assert sim.events_processed == 500
        assert excinfo.value.kind == "events"
        assert excinfo.value.limit == 500

    def test_queue_left_intact_on_budget_trip(self):
        sim = Simulator()
        sim.schedule(0.0, make_runaway(sim))
        with pytest.raises(BudgetExceededError):
            sim.run(event_budget=10)
        assert sim.pending_events > 0  # the offending event is still queued

    def test_budget_not_tripped_by_finite_run(self):
        sim = Simulator()
        fired = []
        for i in range(50):
            sim.schedule(float(i), lambda i=i: fired.append(i))
        sim.run(event_budget=50)
        assert len(fired) == 50

    def test_cancelled_events_do_not_consume_budget(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i), lambda: None).cancel()
        sim.schedule(20.0, lambda: fired.append("live"))
        sim.run(event_budget=1)
        assert fired == ["live"]


class TestTimeBudget:
    def test_clock_escape_raises(self):
        sim = Simulator()

        def march():
            sim.schedule(1.0, march)

        sim.schedule(1.0, march)
        with pytest.raises(BudgetExceededError) as excinfo:
            sim.run(time_budget=100.0)
        assert excinfo.value.kind == "sim-time"
        assert sim.now <= 100.0

    def test_until_inside_budget_stops_gracefully(self):
        sim = Simulator()

        def march():
            sim.schedule(1.0, march)

        sim.schedule(1.0, march)
        sim.run(until=10.0, time_budget=100.0)
        assert sim.now == 10.0


class TestWallClock:
    def test_wall_deadline_in_the_past_raises(self):
        sim = Simulator()
        sim.schedule(0.0, make_runaway(sim))
        with pytest.raises(BudgetExceededError) as excinfo:
            sim.run(wall_deadline=0.0)  # monotonic() is always past 0
        assert excinfo.value.kind == "wall-clock"


class TestWatchdogConfig:
    def test_rejects_non_positive_budgets(self):
        with pytest.raises(ConfigurationError):
            Watchdog(max_events=0)
        with pytest.raises(ConfigurationError):
            Watchdog(wall_clock_s=-1.0)
        with pytest.raises(ConfigurationError):
            Watchdog(max_sim_time=0.0)

    def test_noop_watchdog_produces_no_kwargs(self):
        assert Watchdog().run_kwargs() == {}

    def test_default_has_generous_budgets(self):
        watchdog = Watchdog.default()
        assert watchdog.max_events >= 10_000_000
        assert watchdog.wall_clock_s >= 60.0


class TestScope:
    def test_scope_installs_and_restores(self):
        assert current_watchdog() is None
        watchdog = Watchdog(max_events=100)
        with watchdog_scope(watchdog):
            assert current_watchdog() is watchdog
            with watchdog_scope(None):  # inner scope shadows
                assert current_watchdog() is None
            assert current_watchdog() is watchdog
        assert current_watchdog() is None

    def test_run_flow_picks_up_ambient_watchdog(self):
        built = hsr_scenario().build(duration=30.0, seed=11)
        with watchdog_scope(Watchdog(max_events=50)):
            with pytest.raises(BudgetExceededError):
                run_flow(built.config, built.data_loss, built.ack_loss, seed=11)

    def test_explicit_watchdog_bounds_run_flow(self):
        built = hsr_scenario().build(duration=30.0, seed=11)
        with pytest.raises(BudgetExceededError):
            run_flow(
                built.config,
                built.data_loss,
                built.ack_loss,
                seed=11,
                watchdog=Watchdog(max_events=50),
            )


class TestDefaultBudgetHeadroom:
    def test_fig10_scale_run_never_trips_default_budget(self):
        # The satellite guarantee: real experiment workloads sit orders
        # of magnitude below the default budgets, so the watchdog only
        # ever fires on genuine runaways.
        with watchdog_scope(Watchdog.default()):
            result = run_experiment("fig10", scale=0.25, seed=3)
        assert result.experiment_id == "fig10"

    def test_normal_flow_unaffected_by_default_watchdog(self):
        built = hsr_scenario().build(duration=20.0, seed=5)
        clean = run_flow(built.config, built.data_loss, built.ack_loss, seed=5)
        built = hsr_scenario().build(duration=20.0, seed=5)
        guarded = run_flow(
            built.config,
            built.data_loss,
            built.ack_loss,
            seed=5,
            watchdog=Watchdog.default(),
        )
        assert clean.log.delivered_payloads == guarded.log.delivered_payloads
