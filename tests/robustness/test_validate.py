"""Trace validation: honest captures pass, every corruption class is named."""

import pytest

from repro.hsr.scenario import hsr_scenario, stationary_scenario
from repro.robustness.validate import check_trace, validate_trace
from repro.simulator.connection import run_flow
from repro.simulator.metrics import AckRecord, DataPacketRecord, TimeoutRecord
from repro.traces.capture import capture_flow
from repro.traces.events import FlowMetadata, FlowTrace
from repro.util.errors import TraceValidationError


def metadata(duration=10.0):
    return FlowMetadata(
        flow_id="test/flow/000",
        provider="China Mobile",
        technology="LTE",
        scenario="hsr",
        capture_month="2015-10",
        phone_model="Samsung Note 3",
        duration=duration,
        seed=1,
    )


def simulated_trace(seed=3, duration=20.0, scenario=None):
    scenario = scenario or hsr_scenario()
    built = scenario.build(duration=duration, seed=seed)
    result = run_flow(built.config, built.data_loss, built.ack_loss, seed=seed)
    return capture_flow(result, metadata(duration))


def data_record(**overrides):
    defaults = dict(
        transmission_id=0, seq=0, send_time=1.0, arrival_time=1.1
    )
    defaults.update(overrides)
    return DataPacketRecord(**defaults)


class TestHealthyTraces:
    def test_simulated_hsr_trace_is_valid(self):
        assert validate_trace(simulated_trace()) == []

    def test_simulated_stationary_trace_is_valid(self):
        trace = simulated_trace(scenario=stationary_scenario())
        result = check_trace(trace)
        assert result.ok
        assert result.flow_id == "test/flow/000"

    def test_capture_flow_validate_passes_healthy_flow(self):
        built = hsr_scenario().build(duration=15.0, seed=4)
        result = run_flow(built.config, built.data_loss, built.ack_loss, seed=4)
        trace = capture_flow(result, metadata(15.0), validate=True)
        assert trace.delivered_payloads > 0

    def test_empty_trace_is_valid(self):
        assert validate_trace(FlowTrace(metadata=metadata())) == []


class TestCorruptions:
    def test_non_positive_duration(self):
        issues = validate_trace(FlowTrace(metadata=metadata(duration=0.0)))
        assert any("duration" in issue for issue in issues)

    def test_non_monotonic_send_times(self):
        trace = FlowTrace(
            metadata=metadata(),
            data_packets=[
                data_record(send_time=2.0, arrival_time=2.1),
                data_record(transmission_id=1, seq=1, send_time=1.0, arrival_time=1.1),
            ],
        )
        assert any("send order" in issue for issue in validate_trace(trace))

    def test_arrival_before_send(self):
        trace = FlowTrace(
            metadata=metadata(),
            data_packets=[data_record(send_time=2.0, arrival_time=1.0)],
        )
        assert any("before it was sent" in i for i in validate_trace(trace))

    def test_dropped_packet_with_arrival(self):
        trace = FlowTrace(
            metadata=metadata(),
            data_packets=[data_record(dropped=True)],
        )
        assert any("marked lost" in issue for issue in validate_trace(trace))

    def test_event_after_flow_end(self):
        trace = FlowTrace(
            metadata=metadata(duration=5.0),
            data_packets=[data_record(send_time=9.0, arrival_time=9.1)],
        )
        assert any("after flow end" in issue for issue in validate_trace(trace))

    def test_negative_seq(self):
        trace = FlowTrace(
            metadata=metadata(), data_packets=[data_record(seq=-1)]
        )
        assert any("negative sequence" in i for i in validate_trace(trace))

    def test_ack_beyond_sent_data(self):
        trace = FlowTrace(
            metadata=metadata(),
            data_packets=[data_record()],
            acks=[
                AckRecord(
                    transmission_id=0, ack_seq=50, send_time=1.2, arrival_time=1.3
                )
            ],
        )
        assert any("never" in i or "highest data seq" in i for i in validate_trace(trace))

    def test_payload_counters_exceed_arrivals(self):
        trace = FlowTrace(
            metadata=metadata(),
            data_packets=[data_record()],
            delivered_payloads=5,
        )
        assert any("payload counters" in i for i in validate_trace(trace))

    def test_timeout_outside_flow(self):
        trace = FlowTrace(
            metadata=metadata(duration=5.0),
            timeouts=[
                TimeoutRecord(
                    time=7.0, seq=0, backoff_exponent=0, rto_value=1.0,
                    sequence_index=0,
                )
            ],
        )
        assert any("timeout[0]" in issue for issue in validate_trace(trace))

    def test_multiple_issues_all_reported(self):
        trace = FlowTrace(
            metadata=metadata(duration=5.0),
            data_packets=[
                data_record(seq=-1, send_time=9.0, arrival_time=8.0),
            ],
            delivered_payloads=-1,
        )
        issues = validate_trace(trace)
        assert len(issues) >= 3


class TestCaptureIntegration:
    def test_capture_flow_raises_on_corrupt_log(self):
        built = stationary_scenario().build(duration=10.0, seed=6)
        result = run_flow(built.config, built.data_loss, built.ack_loss, seed=6)
        result.log.data_packets[0].send_time = 99.0  # beyond the horizon
        with pytest.raises(TraceValidationError) as excinfo:
            capture_flow(result, metadata(10.0), validate=True)
        assert excinfo.value.flow_id == "test/flow/000"
        assert excinfo.value.issues

    def test_capture_flow_without_validate_keeps_old_behaviour(self):
        built = stationary_scenario().build(duration=10.0, seed=6)
        result = run_flow(built.config, built.data_loss, built.ack_loss, seed=6)
        result.log.data_packets[0].send_time = 99.0
        trace = capture_flow(result, metadata(10.0))  # no raise
        assert trace.data_packets
