"""Fault injection: deterministic chaos that actually hurts the channel."""

import pytest

from repro.hsr.scenario import hsr_scenario, stationary_scenario
from repro.robustness.faults import (
    FaultPlan,
    current_fault_plan,
    fault_scope,
    with_faults,
)
from repro.simulator.connection import run_flow
from repro.util.errors import ConfigurationError


def run_built(built, seed):
    return run_flow(built.config, built.data_loss, built.ack_loss, seed=seed)


class TestFaultPlanConfig:
    def test_default_is_noop(self):
        assert FaultPlan().is_noop()

    def test_aggressive_is_not_noop(self):
        assert not FaultPlan.aggressive().is_noop()

    def test_rejects_negative_rates(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(deep_fade_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(deep_fade_loss=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan.aggressive(0.0)

    def test_noop_apply_returns_built_unchanged(self):
        built = stationary_scenario().build(duration=10.0, seed=1)
        assert FaultPlan().apply(built, seed=1) is built


class TestFaultEffects:
    def test_ack_blackouts_raise_ack_loss(self):
        scenario = stationary_scenario()
        plan = FaultPlan(ack_blackout_rate=0.2, ack_blackout_mean_duration=1.5)
        clean = run_built(scenario.build(duration=40.0, seed=9), 9)
        faulted = run_built(plan.apply(scenario.build(duration=40.0, seed=9), 9), 9)
        assert faulted.log.ack_loss_rate > clean.log.ack_loss_rate

    def test_deep_fades_raise_data_loss(self):
        scenario = stationary_scenario()
        plan = FaultPlan(deep_fade_rate=0.2, deep_fade_mean_duration=2.0)
        clean = run_built(scenario.build(duration=40.0, seed=9), 9)
        faulted = run_built(plan.apply(scenario.build(duration=40.0, seed=9), 9), 9)
        assert faulted.log.data_loss_rate > clean.log.data_loss_rate

    def test_aggressive_plan_degrades_throughput(self):
        scenario = hsr_scenario()
        clean = run_built(scenario.build(duration=30.0, seed=4), 4)
        faulted = run_built(
            FaultPlan.aggressive(2.0).apply(scenario.build(duration=30.0, seed=4), 4),
            4,
        )
        assert faulted.log.delivered_payloads < clean.log.delivered_payloads

    def test_rtt_spikes_widen_jitter(self):
        built = stationary_scenario().build(duration=10.0, seed=2)
        faulted = FaultPlan(rtt_spike_sigma=0.4).apply(built, seed=2)
        assert faulted.config.jitter_sigma == pytest.approx(
            built.config.jitter_sigma + 0.4
        )

    def test_storm_windows_recorded_in_outages(self):
        built = stationary_scenario().build(duration=60.0, seed=3)
        assert built.outages == ()
        faulted = FaultPlan(
            handoff_storm_rate=0.2, handoff_storm_mean_outage=1.0
        ).apply(built, seed=3)
        assert len(faulted.outages) > 0
        assert list(faulted.outages) == sorted(faulted.outages)


class TestDeterminism:
    def test_same_seed_same_chaos(self):
        scenario = hsr_scenario()
        plan = FaultPlan.aggressive(1.5)
        results = [
            run_built(plan.apply(scenario.build(duration=20.0, seed=6), 6), 6)
            for _ in range(2)
        ]
        assert (
            results[0].log.delivered_payloads == results[1].log.delivered_payloads
        )
        assert results[0].log.data_loss_rate == results[1].log.data_loss_rate

    def test_different_seeds_different_chaos(self):
        scenario = hsr_scenario()
        plan = FaultPlan.aggressive(1.5)
        a = run_built(plan.apply(scenario.build(duration=20.0, seed=6), 6), 6)
        b = run_built(plan.apply(scenario.build(duration=20.0, seed=7), 7), 7)
        assert a.log.delivered_payloads != b.log.delivered_payloads

    def test_fault_stream_independent_of_base_channel(self):
        # Applying a plan must not change which random draws the base
        # scenario consumed: the clean part of the channel schedule is
        # identical with and without faults (fresh builds, same seed).
        built_a = hsr_scenario().build(duration=30.0, seed=8)
        built_b = FaultPlan(ack_blackout_rate=0.1).apply(
            hsr_scenario().build(duration=30.0, seed=8), 8
        )
        assert built_a.outages == built_b.outages  # no storms in this plan


class TestScenarioHook:
    def test_with_faults_wraps_every_build(self):
        scenario = with_faults(hsr_scenario(), FaultPlan(rtt_spike_sigma=0.3))
        built = scenario.build(duration=10.0, seed=1)
        plain = hsr_scenario().build(duration=10.0, seed=1)
        assert built.config.jitter_sigma == pytest.approx(
            plain.config.jitter_sigma + 0.3
        )

    def test_with_channel_hook_none_clears(self):
        scenario = with_faults(hsr_scenario(), FaultPlan(rtt_spike_sigma=0.3))
        cleared = scenario.with_channel_hook(None)
        assert cleared.channel_hook is None


class TestScope:
    def test_fault_scope_installs_and_restores(self):
        assert current_fault_plan() is None
        plan = FaultPlan.aggressive()
        with fault_scope(plan):
            assert current_fault_plan() is plan
        assert current_fault_plan() is None
